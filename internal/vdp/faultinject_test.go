package vdp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// faultSubs is the fixed client population of the crash matrix; every run —
// uninterrupted baseline, crashed, and recovered — submits these exact
// submissions, so any digest divergence is the server's fault.
func faultSubs(t *testing.T, pub *Public) []*ClientSubmission {
	t.Helper()
	return buildSubs(t, pub, []int{1, 0, 1, 1})
}

// faultBaseline runs the population uninterrupted on a plain file log and
// returns the sealed digest plus the number of appends the epoch costs —
// which is exactly the space of crash points worth injecting.
func faultBaseline(t *testing.T, pub *Public, subs []*ClientSubmission) (digest []byte, appends int) {
	t.Helper()
	ctx := context.Background()
	log, err := store.OpenFileLog(filepath.Join(t.TempDir(), "board.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	sess, err := NewSession(pub, SessionOptions{Rand: testSeed(70), Store: log, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if err := sess.Submit(ctx, sub); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return TranscriptDigest(pub, res.Transcript), log.Len()
}

// crashRun drives a session against a fault-injected log until the fault
// fires (or the epoch completes, for trips past the epoch's append count),
// modeling the process dying at that exact write.
func crashRun(t *testing.T, pub *Public, subs []*ClientSubmission, path string, kind store.FaultKind, trip int) {
	t.Helper()
	ctx := context.Background()
	inner, err := store.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	fl := store.NewFaultLog(inner, kind, trip)
	defer fl.Close()
	sess, err := NewSession(pub, SessionOptions{Rand: testSeed(70), Store: fl, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if err := sess.Submit(ctx, sub); err != nil {
			if errors.Is(err, store.ErrInjected) {
				return // the process is dead
			}
			t.Fatalf("pre-crash submit: %v", err)
		}
	}
	if _, err := sess.Finalize(ctx); err != nil && !errors.Is(err, store.ErrInjected) {
		t.Fatalf("pre-crash finalize: %v", err)
	}
}

// recoverRun reopens the crashed log the honest way, resumes the session,
// replays the client population (tolerating duplicate rejections for
// clients whose records survived the crash), finalizes if the crash
// happened before the seal landed, and returns the sealed digest.
func recoverRun(t *testing.T, pub *Public, subs []*ClientSubmission, path string) []byte {
	t.Helper()
	ctx := context.Background()
	log, err := store.OpenFileLog(path)
	if err != nil {
		t.Fatalf("recovery reopen: %v", err)
	}
	defer log.Close()
	sess, err := ResumeSession(ctx, pub, SessionOptions{Rand: testSeed(70), Store: log, Parallelism: 2})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !sess.Finalized() {
		for _, sub := range subs {
			err := sess.Submit(ctx, sub)
			if err != nil && !errors.Is(err, ErrClientReject) {
				t.Fatalf("post-recovery submit: %v", err)
			}
		}
		res, err := sess.Finalize(ctx)
		if err != nil {
			t.Fatalf("post-recovery finalize: %v", err)
		}
		return TranscriptDigest(pub, res.Transcript)
	}
	return TranscriptDigest(pub, sess.SealedTranscript())
}

// TestFaultInjectionMatrix is the crash-recovery acceptance criterion of
// the live-audit PR: for EVERY append the epoch performs and EVERY fault
// kind — clean failure, torn half-write, committed-but-unacknowledged — the
// resumed session finishes the epoch with a TranscriptDigest byte-identical
// to the uninterrupted run, and the live tail independently verifies the
// recovered log to that same digest. No crash point may corrupt evidence or
// fork the release.
func TestFaultInjectionMatrix(t *testing.T) {
	pub := testPublic(t, 2, 1, 4)
	subs := faultSubs(t, pub)
	want, appends := faultBaseline(t, pub, subs)
	if appends < 2*len(subs)+1 {
		t.Fatalf("baseline epoch cost %d appends, want at least %d", appends, 2*len(subs)+1)
	}

	for _, kind := range []store.FaultKind{store.FaultFail, store.FaultShortWrite, store.FaultTornAppend} {
		for trip := 0; trip < appends; trip++ {
			t.Run(fmt.Sprintf("%s/append-%d", kind, trip), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "board.log")
				crashRun(t, pub, subs, path, kind, trip)
				got := recoverRun(t, pub, subs, path)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s at append %d: recovered digest differs from the uninterrupted run", kind, trip)
				}

				// The recovered log as a third party sees it: the live tail
				// replays it from byte zero and lands on the same digest.
				log, err := store.OpenFileLogReadOnly(path)
				if err != nil {
					t.Fatal(err)
				}
				defer log.Close()
				a, err := TailAuditLog(pub, log, TailOptions{Workers: 2, Window: 2})
				if err != nil {
					t.Fatal(err)
				}
				defer a.Close()
				pollUntilSealed(t, a)
				if !bytes.Equal(a.Digest(), want) {
					t.Fatalf("%s at append %d: live tail digest differs from the uninterrupted run", kind, trip)
				}
			})
		}
	}
}

// segmentedBaseline runs the population uninterrupted over a segmented store
// and returns the merged digest plus the victim segment's append count — the
// crash points worth injecting into that one shard.
func segmentedBaseline(t *testing.T, pub *Public, subs []*ClientSubmission, shards, victim int) (digest []byte, appends int) {
	t.Helper()
	ctx := context.Background()
	seg, err := store.OpenSegmentedLog(t.TempDir(), shards)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	ss, err := NewShardedSession(pub, SessionOptions{Rand: testSeed(70), Segmented: seg, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if err := ss.Submit(ctx, sub); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ss.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res.Digest, seg.Segment(victim).Len()
}

// crashSegmented drives a sharded session whose victim segment is fronted by
// a FaultLog until the fault fires (modeling one shard's disk dying while its
// siblings stay honest) or the epoch completes.
func crashSegmented(t *testing.T, pub *Public, subs []*ClientSubmission, dir string, shards, victim int, kind store.FaultKind, trip int) {
	t.Helper()
	ctx := context.Background()
	seg, err := store.OpenSegmentedLog(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	seg.SetBoard(victim, store.NewFaultLog(seg.Segment(victim), kind, trip))
	ss, err := NewShardedSession(pub, SessionOptions{Rand: testSeed(70), Segmented: seg, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if err := ss.Submit(ctx, sub); err != nil {
			if errors.Is(err, store.ErrInjected) {
				return // the process is dead
			}
			t.Fatalf("pre-crash submit: %v", err)
		}
	}
	if _, err := ss.Finalize(ctx); err != nil && !errors.Is(err, store.ErrInjected) {
		t.Fatalf("pre-crash finalize: %v", err)
	}
}

// recoverSegmented reopens the crashed directory the honest way, resumes the
// sharded session, replays the population (a shard that sealed before the
// crash refuses late submissions, a surviving record is a duplicate — both
// expected), completes the epoch and returns the merged digest.
func recoverSegmented(t *testing.T, pub *Public, subs []*ClientSubmission, dir string) []byte {
	t.Helper()
	ctx := context.Background()
	seg, err := store.OpenSegmentedLog(dir, 0)
	if err != nil {
		t.Fatalf("recovery reopen: %v", err)
	}
	defer seg.Close()
	ss, err := ResumeShardedSession(ctx, pub, SessionOptions{Rand: testSeed(70), Segmented: seg, Parallelism: 2})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	var digest []byte
	if !ss.Finalized() {
		for _, sub := range subs {
			err := ss.Submit(ctx, sub)
			if err != nil && !errors.Is(err, ErrClientReject) && !errors.Is(err, ErrBadConfig) {
				t.Fatalf("post-recovery submit: %v", err)
			}
		}
		res, err := ss.Finalize(ctx)
		if err != nil {
			t.Fatalf("post-recovery finalize: %v", err)
		}
		digest = res.Digest
	} else {
		ts := make([]*Transcript, ss.Shards())
		for i := range ts {
			if ts[i] = ss.Shard(i).SealedTranscript(); ts[i] == nil {
				t.Fatalf("resumed shard %d is finalized without a transcript", i)
			}
		}
		digest = MergedTranscriptDigest(pub, ts)
	}
	// The recovered directory as a third party sees it.
	if err := AuditSegmentedLog(ctx, pub, seg, -1, 2); err != nil {
		t.Fatalf("segmented audit after recovery: %v", err)
	}
	return digest
}

// TestFaultInjectionSegmented extends the crash matrix to the segmented
// store: for every append one shard's segment performs and every fault kind,
// a crash of that single segment — its siblings untouched — recovers to a
// merged digest byte-identical to the uninterrupted run, and the offline
// segmented audit accepts the directory.
func TestFaultInjectionSegmented(t *testing.T) {
	const shards, victim = 2, 0
	pub := testPublic(t, 2, 1, 4)
	subs := faultSubs(t, pub)
	want, appends := segmentedBaseline(t, pub, subs, shards, victim)
	if appends < 3 {
		t.Fatalf("victim segment cost %d appends, too few crash points to matter", appends)
	}

	for _, kind := range []store.FaultKind{store.FaultFail, store.FaultShortWrite, store.FaultTornAppend} {
		for trip := 0; trip < appends; trip++ {
			t.Run(fmt.Sprintf("%s/append-%d", kind, trip), func(t *testing.T) {
				dir := t.TempDir()
				crashSegmented(t, pub, subs, dir, shards, victim, kind, trip)
				if got := recoverSegmented(t, pub, subs, dir); !bytes.Equal(got, want) {
					t.Fatalf("%s at segment append %d: recovered merged digest differs from the uninterrupted run", kind, trip)
				}
			})
		}
	}
}

// TestFaultInjectionSeeded sweeps seed-derived fault plans through the same
// harness — the entry point a future chaos runner would use: pick a seed,
// reproduce the exact crash.
func TestFaultInjectionSeeded(t *testing.T) {
	pub := testPublic(t, 2, 1, 4)
	subs := faultSubs(t, pub)
	want, appends := faultBaseline(t, pub, subs)

	for seed := uint64(0); seed < 6; seed++ {
		kind, trip := store.FaultFromSeed(seed, appends)
		path := filepath.Join(t.TempDir(), "board.log")
		crashRun(t, pub, subs, path, kind, trip)
		if got := recoverRun(t, pub, subs, path); !bytes.Equal(got, want) {
			t.Fatalf("seed %d (%s at append %d): recovered digest differs from the uninterrupted run",
				seed, kind, trip)
		}
	}
}

// TestFaultInjectionCompactBoundary crashes the snapshot append itself: a
// fault while compacting must either leave the epoch sealed-and-resumable
// (no snapshot) or complete the compaction — never a half-compacted log.
func TestFaultInjectionCompactBoundary(t *testing.T) {
	ctx := context.Background()
	pub := testPublic(t, 2, 1, 4)
	subs := faultSubs(t, pub)
	want, appends := faultBaseline(t, pub, subs)

	for _, kind := range []store.FaultKind{store.FaultFail, store.FaultShortWrite, store.FaultTornAppend} {
		t.Run(kind.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "board.log")
			inner, err := store.OpenFileLog(path)
			if err != nil {
				t.Fatal(err)
			}
			// Trip on the append right after the seal: the snapshot record.
			fl := store.NewFaultLog(inner, kind, appends)
			sess, err := NewSession(pub, SessionOptions{Rand: testSeed(70), Store: fl, Parallelism: 2})
			if err != nil {
				t.Fatal(err)
			}
			for _, sub := range subs {
				if err := sess.Submit(ctx, sub); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := sess.Finalize(ctx); err != nil {
				t.Fatal(err)
			}
			err = sess.Compact()
			if kind == store.FaultTornAppend {
				// The snapshot is durable even though the append reported
				// failure; Compact refuses to advance the epoch.
				if !errors.Is(err, store.ErrInjected) {
					t.Fatalf("Compact over a torn append returned %v", err)
				}
			} else if !errors.Is(err, store.ErrInjected) {
				t.Fatalf("Compact over an injected fault returned %v", err)
			}
			fl.Close()

			log, err := store.OpenFileLog(path)
			if err != nil {
				t.Fatalf("recovery reopen: %v", err)
			}
			defer log.Close()
			sess2, err := ResumeSession(ctx, pub, SessionOptions{Rand: testSeed(70), Store: log, Parallelism: 2})
			if err != nil {
				t.Fatalf("resume after crashed Compact: %v", err)
			}
			switch kind {
			case store.FaultTornAppend:
				// The snapshot landed: the resumed session starts epoch 1.
				if sess2.Epoch() != 1 || sess2.Finalized() {
					t.Fatalf("resumed epoch %d finalized=%v, want open epoch 1", sess2.Epoch(), sess2.Finalized())
				}
			default:
				// No snapshot: the resumed session still holds sealed epoch 0.
				if sess2.Epoch() != 0 || !sess2.Finalized() {
					t.Fatalf("resumed epoch %d finalized=%v, want sealed epoch 0", sess2.Epoch(), sess2.Finalized())
				}
				if !bytes.Equal(TranscriptDigest(pub, sess2.SealedTranscript()), want) {
					t.Fatal("sealed digest lost across the crashed Compact")
				}
			}
			if err := AuditLog(ctx, pub, log, 0, 2); err != nil {
				t.Fatalf("audit after crashed Compact: %v", err)
			}
		})
	}
}
