package vdp

import (
	"fmt"
	"math"
)

// Sketch query framing: the vdpclient -query / vdpserver query-serving wire
// format. Queries and replies ride the same versioned little-frame
// discipline as every other vdp codec — one leading version byte, u32
// fields, length checks on decode — so the fuzz harness covers them like
// the rest of the surface. Floats cross the wire as IEEE-754 bit patterns
// (math.Float64bits) split into two u32s, matching the u64 convention the
// budget ledger uses.

// Query kinds.
const (
	// SketchQueryPoint asks for one item's estimate; Arg is the item.
	SketchQueryPoint uint32 = 0
	// SketchQueryTopK asks for the k heaviest items; Arg is k (0 = the
	// whole ranked domain).
	SketchQueryTopK uint32 = 1
)

// SketchQuery is a decoded query frame.
type SketchQuery struct {
	Kind uint32
	Arg  int
}

// EncodeSketchQuery serializes a query frame.
func EncodeSketchQuery(q *SketchQuery) []byte {
	var w wireWriter
	w.version()
	w.u32(q.Kind)
	w.u32(uint32(q.Arg))
	return w.b
}

// DecodeSketchQuery parses a query frame.
func DecodeSketchQuery(b []byte) (*SketchQuery, error) {
	r := wireReader{b: b}
	r.version()
	kind := r.u32()
	arg := r.u32()
	if err := r.finish(); err != nil {
		return nil, err
	}
	if kind != SketchQueryPoint && kind != SketchQueryTopK {
		return nil, fmt.Errorf("vdp: sketch query has unknown kind %d", kind)
	}
	if arg > maxWireDim {
		return nil, fmt.Errorf("vdp: sketch query argument %d exceeds the %d cap", arg, maxWireDim)
	}
	return &SketchQuery{Kind: kind, Arg: int(arg)}, nil
}

// writeU64 appends v as two u32s, high word first.
func (w *wireWriter) writeU64(v uint64) {
	w.u32(uint32(v >> 32))
	w.u32(uint32(v))
}

// readU64 consumes two u32s, high word first.
func (r *wireReader) readU64() uint64 {
	hi := r.u32()
	lo := r.u32()
	return uint64(hi)<<32 | uint64(lo)
}

// EncodeItemEstimates serializes a query reply: the ranked item estimates
// with their shared error bound.
func EncodeItemEstimates(items []ItemEstimate) []byte {
	var w wireWriter
	w.version()
	w.u32(uint32(len(items)))
	for _, it := range items {
		w.u32(uint32(it.Item))
		w.writeU64(math.Float64bits(it.Estimate))
		w.writeU64(math.Float64bits(it.Bound))
	}
	return w.b
}

// DecodeItemEstimates parses a query reply.
func DecodeItemEstimates(b []byte) ([]ItemEstimate, error) {
	r := wireReader{b: b}
	r.version()
	n := r.u32()
	if n > maxWireDim {
		return nil, fmt.Errorf("vdp: sketch reply claims %d items, cap is %d", n, maxWireDim)
	}
	// 20 bytes per item: reject the claim before allocating for it.
	if uint64(len(b)) < 5+20*uint64(n) {
		return nil, fmt.Errorf("vdp: sketch reply claims %d items but is %d bytes", n, len(b))
	}
	items := make([]ItemEstimate, 0, n)
	for i := uint32(0); i < n; i++ {
		item := r.u32()
		est := math.Float64frombits(r.readU64())
		bound := math.Float64frombits(r.readU64())
		if r.err != nil {
			break
		}
		items = append(items, ItemEstimate{Item: int(item), Estimate: est, Bound: bound})
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return items, nil
}
