package vdp

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// pollUntilSealed drains the tail until the auditor reports the epoch
// sealed; the records are already durable, so one sweep should do it.
func pollUntilSealed(t *testing.T, a *TailAuditor) {
	t.Helper()
	if _, err := a.Poll(); err != nil {
		t.Fatalf("tail poll: %v", err)
	}
	if !a.Sealed() {
		t.Fatalf("tail consumed %d records but the epoch is not sealed", a.Records())
	}
}

// TestTailAuditorLiveFileLog is the live-follow happy path: a tail attached
// to a durable session's board log verifies every record as it lands, holds
// the sealed digest the moment Finalize's seal record arrives, survives a
// snapshot (Compact) epoch boundary, and agrees with the offline AuditLog
// on both epochs.
func TestTailAuditorLiveFileLog(t *testing.T) {
	ctx := context.Background()
	pub := testPublic(t, 2, 1, 4)
	log, err := store.OpenFileLog(filepath.Join(t.TempDir(), "board.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	sess, err := NewSession(pub, SessionOptions{Rand: testSeed(77), Store: log, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := TailAuditLog(pub, log, TailOptions{Workers: 2, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	subs := buildSubs(t, pub, []int{1, 0, 1, 1})
	for i, sub := range subs {
		if err := sess.Submit(ctx, sub); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		// Interleave polling with submissions: the tail keeps up live.
		if _, err := a.Poll(); err != nil {
			t.Fatalf("mid-epoch poll after submit %d: %v", i, err)
		}
	}
	if a.Sealed() {
		t.Fatal("tail sealed before Finalize")
	}
	if a.Clients() != len(subs) {
		t.Fatalf("tail follows %d clients, want %d", a.Clients(), len(subs))
	}

	res, err := sess.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pollUntilSealed(t, a)
	want := TranscriptDigest(pub, res.Transcript)
	if !bytes.Equal(a.Digest(), want) {
		t.Fatal("live tail digest differs from the sealed transcript's")
	}
	if err := AuditLog(ctx, pub, log, 0, 2); err != nil {
		t.Fatalf("offline audit disagrees with the live tail: %v", err)
	}
	// The perf-harness hook re-verifies the already-consumed seal in place.
	if err := a.ReverifySeal(pub.EncodeTranscript(res.Transcript)); err != nil {
		t.Fatalf("re-verifying the consumed seal: %v", err)
	}

	// Compact: the snapshot record closes epoch 0 under the digest the tail
	// just verified, and the tail rolls into epoch 1.
	if err := sess.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Poll(); err != nil {
		t.Fatalf("poll over snapshot: %v", err)
	}
	if a.Epoch() != 1 || a.Sealed() {
		t.Fatalf("after snapshot: epoch %d sealed=%v, want epoch 1 open", a.Epoch(), a.Sealed())
	}
	if d, ok := a.VerifiedDigest(0); !ok || !bytes.Equal(d, want) {
		t.Fatal("epoch 0's verified digest not retained across the snapshot")
	}

	// Epoch 1 on the compacted log.
	for _, sub := range subs[:2] {
		if err := sess.Submit(ctx, sub); err != nil {
			t.Fatal(err)
		}
	}
	res1, err := sess.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pollUntilSealed(t, a)
	if !bytes.Equal(a.Digest(), TranscriptDigest(pub, res1.Transcript)) {
		t.Fatal("epoch 1 tail digest differs from the sealed transcript's")
	}
	for _, epoch := range []int{0, 1} {
		if err := AuditLog(ctx, pub, log, epoch, 2); err != nil {
			t.Fatalf("offline audit of epoch %d after compaction: %v", epoch, err)
		}
	}
}

// TestTailAuditorDeferredMemLog: a DeferVerification session writes no
// per-arrival verdicts; the tail decides the whole board by its own batch
// check at seal time and still lands on the identical digest.
func TestTailAuditorDeferredMemLog(t *testing.T) {
	ctx := context.Background()
	pub := testPublic(t, 2, 1, 4)
	log := store.NewMemLog()
	sess, err := NewSession(pub, SessionOptions{
		Rand: testSeed(78), Store: log, Parallelism: 2, DeferVerification: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range buildSubs(t, pub, []int{1, 1, 0, 1}) {
		if err := sess.Submit(ctx, sub); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	a, err := TailAuditLog(pub, log, TailOptions{Workers: 2, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	pollUntilSealed(t, a)
	if !bytes.Equal(a.Digest(), TranscriptDigest(pub, res.Transcript)) {
		t.Fatal("deferred-mode tail digest differs from the sealed transcript's")
	}
}

// tailBaseRecords runs a clean durable session and returns its board-log
// records, raw material for the mutation table.
func tailBaseRecords(t *testing.T, pub *Public) []*store.Record {
	t.Helper()
	ctx := context.Background()
	log := store.NewMemLog()
	sess, err := NewSession(pub, SessionOptions{Rand: testSeed(79), Store: log, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range buildSubs(t, pub, []int{1, 0, 1, 1}) {
		if err := sess.Submit(ctx, sub); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	recs, err := log.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func copyRecords(recs []*store.Record) []*store.Record {
	out := make([]*store.Record, len(recs))
	for i, rec := range recs {
		cp := *rec
		cp.Payload = append([]byte(nil), rec.Payload...)
		out[i] = &cp
	}
	return out
}

// TestTailAuditorAdversarialMutations feeds tampered record sequences into
// the live tail: every mutation must be flagged at the first record where
// the divergence is observable, with the offending position in the error —
// and always before the epoch could certify. The offline AuditLog must
// refuse the same sequence (parity on rejection).
func TestTailAuditorAdversarialMutations(t *testing.T) {
	pub := testPublic(t, 2, 1, 4)
	base := tailBaseRecords(t, pub)
	// Eager session, 4 accepted clients: sub/verdict pairs then the seal.
	sealAt := len(base) - 1
	if base[sealAt].Kind != RecordSeal && base[sealAt].Kind != RecordSealChunk {
		t.Fatalf("unexpected base log shape: last record kind %d", base[sealAt].Kind)
	}

	cases := []struct {
		name   string
		mutate func([]*store.Record) []*store.Record
		// wantAt is the record index the error must point at; -1 skips the
		// position check (mutations whose first observable divergence
		// depends on where the flipped byte lands in the wire layout).
		wantAt   int
		wantFrag string
		// auditAccepts marks mutations only the live tail can see: the
		// offline audit cross-checks the roster as a set, so it accepts
		// them, while the tail additionally pins arrival order.
		auditAccepts bool
	}{
		{
			// A verdict naming a client whose submission never arrived:
			// divergence is observable immediately.
			name: "verdict-before-submission",
			mutate: func(recs []*store.Record) []*store.Record {
				recs[0], recs[1] = recs[1], recs[0]
				return recs
			},
			wantAt:   0,
			wantFrag: "verdict for unknown client",
		},
		{
			// Reordering whole client blocks is grammatically legal; the
			// seal's roster walk is the first place the order is pinned.
			name: "reordered-clients",
			mutate: func(recs []*store.Record) []*store.Record {
				recs[0], recs[2] = recs[2], recs[0]
				recs[1], recs[3] = recs[3], recs[1]
				return recs
			},
			wantAt:   sealAt,
			wantFrag: "seal position 0 disagrees",
			// The seal itself is untouched and every client's evidence is
			// still present, so the set-based offline cross-check passes;
			// only the tail notices the log no longer tells the truth about
			// the order clients were admitted in.
			auditAccepts: true,
		},
		{
			// Erasing a decided client via a forged withdrawal record.
			name: "forged-withdrawal",
			mutate: func(recs []*store.Record) []*store.Record {
				forged := &store.Record{Kind: RecordWithdraw, Epoch: 0, Payload: encodeWithdraw(0)}
				out := append(recs[:sealAt:sealAt], forged)
				return append(out, recs[sealAt:]...)
			},
			wantAt:   sealAt,
			wantFrag: "withdrawal of decided client 0",
		},
		{
			// Appending evidence after the seal: the epoch is closed.
			name: "post-seal-append",
			mutate: func(recs []*store.Record) []*store.Record {
				return append(recs, recs[0])
			},
			wantAt:   len(base),
			wantFrag: "after epoch 0 was sealed",
		},
		{
			// A flipped byte inside the logged submission's public part: the
			// logged acceptance verdict no longer matches the cryptography
			// (or the bytes stop parsing — either way, before the seal).
			name: "bit-flipped-submission",
			mutate: func(recs []*store.Record) []*store.Record {
				p := recs[0].Payload
				pubLen := binary.BigEndian.Uint32(p[1:5])
				p[5+pubLen-2] ^= 0x40
				return recs
			},
			wantAt:   -1,
			wantFrag: "offset",
		},
		{
			// A flipped byte inside the seal itself.
			name: "bit-flipped-seal",
			mutate: func(recs []*store.Record) []*store.Record {
				p := recs[sealAt].Payload
				p[len(p)/2] ^= 0x04
				return recs
			},
			wantAt:   -1,
			wantFrag: "offset",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs := tc.mutate(copyRecords(base))

			a := NewTailAuditor(pub, TailOptions{Workers: 2, Window: 2})
			defer a.Close()
			gotAt := -1
			var gotErr error
			for i, rec := range recs {
				if err := a.Feed(rec, int64(i)); err != nil {
					gotAt, gotErr = i, err
					break
				}
			}
			if gotErr == nil {
				t.Fatal("tampered log tailed clean")
			}
			if !errors.Is(gotErr, ErrAuditFail) {
				t.Fatalf("tail error %v is not ErrAuditFail", gotErr)
			}
			if tc.wantAt >= 0 && gotAt != tc.wantAt {
				t.Fatalf("flagged at record %d, want %d (%v)", gotAt, tc.wantAt, gotErr)
			}
			if tc.wantAt >= 0 {
				if frag := fmt.Sprintf("tail record %d (offset %d)", tc.wantAt, tc.wantAt); !strings.Contains(gotErr.Error(), frag) {
					t.Fatalf("error %q does not carry the offending position %q", gotErr, frag)
				}
			}
			if !strings.Contains(gotErr.Error(), tc.wantFrag) {
				t.Fatalf("error %q does not mention %q", gotErr, tc.wantFrag)
			}
			// The tail must never certify the epoch, and its error sticks.
			if a.Sealed() && a.Err() == nil {
				t.Fatal("tampered epoch was certified")
			}
			if err := a.Feed(base[0], 0); err == nil {
				t.Fatal("tail accepted records after a corruption verdict")
			}

			// Parity: the offline auditor reaches the expected verdict on
			// the same sequence (refusal, except where the tail is
			// documented as strictly stronger).
			mlog := store.NewMemLog()
			for _, rec := range recs {
				if err := mlog.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			auditErr := AuditLog(context.Background(), pub, mlog, 0, 2)
			if tc.auditAccepts != (auditErr == nil) {
				t.Fatalf("offline audit = %v, want accepted=%v", auditErr, tc.auditAccepts)
			}
		})
	}
}

// TestTailAuditorFileBitFlip flips a byte of a committed record on disk
// behind a live tail — in-flight tampering with the file itself, below the
// record grammar. The storage layer's CRC catches it and the tail surfaces
// the offending record and byte offset.
func TestTailAuditorFileBitFlip(t *testing.T) {
	ctx := context.Background()
	pub := testPublic(t, 2, 1, 4)
	path := filepath.Join(t.TempDir(), "board.log")
	log, err := store.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	sess, err := NewSession(pub, SessionOptions{Rand: testSeed(80), Store: log, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range buildSubs(t, pub, []int{1, 0, 1}) {
		if err := sess.Submit(ctx, sub); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Finalize(ctx); err != nil {
		t.Fatal(err)
	}

	// Byte offset of record 2 in the file: magic, then framed records.
	recs, err := log.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	off := int64(7) // len(fileMagic)
	for _, rec := range recs[:2] {
		off += int64(len(store.EncodeRecord(rec)))
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, off+8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	a, err := TailAuditLog(pub, log, TailOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	_, err = a.Poll()
	if err == nil {
		t.Fatal("tail certified a log with a flipped byte on disk")
	}
	frag := fmt.Sprintf("record 2 (offset %d)", off)
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not carry the offending position %q", err, frag)
	}
	if a.Sealed() {
		t.Fatal("tampered epoch was certified")
	}
}

// TestTailParityWithAdversaries pins live-tail == offline-audit over the
// full front-door corruption table: for every corrupted client the session
// itself already rejected, both auditors must accept the resulting log and
// the tail's digest must equal the sealed transcript's — single-session
// over a memory log, and sharded over a real segmented log.
func TestTailParityWithAdversaries(t *testing.T) {
	ctx := context.Background()
	pub := testPublic(t, 2, 1, 4)

	submitAll := func(t *testing.T, door interface {
		Submit(context.Context, *ClientSubmission) error
	}, tc adversaryCorruption) {
		t.Helper()
		const n, target = 6, 3
		subs := make([]*ClientSubmission, n)
		for i := range subs {
			sub, err := pub.NewClientSubmission(i, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			subs[i] = sub
		}
		donor, err := pub.NewClientSubmission(100+target, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		tc.corrupt(pub, subs[target], donor)
		for i, sub := range subs {
			err := door.Submit(ctx, sub)
			if i == target {
				if !errors.Is(err, ErrClientReject) {
					t.Fatalf("corrupt client verdict = %v, want ErrClientReject", err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("honest client %d rejected: %v", i, err)
			}
		}
	}

	for _, tc := range adversaryCorruptions {
		t.Run("session/"+tc.name, func(t *testing.T) {
			log := store.NewMemLog()
			sess, err := NewSession(pub, SessionOptions{Store: log, Parallelism: 2})
			if err != nil {
				t.Fatal(err)
			}
			submitAll(t, sess, tc)
			res, err := sess.Finalize(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if err := AuditLog(ctx, pub, log, 0, 2); err != nil {
				t.Fatalf("offline audit: %v", err)
			}
			a, err := TailAuditLog(pub, log, TailOptions{Workers: 2, Window: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			pollUntilSealed(t, a)
			if !bytes.Equal(a.Digest(), TranscriptDigest(pub, res.Transcript)) {
				t.Fatal("tail digest differs from the sealed transcript's")
			}
		})
		t.Run("sharded/"+tc.name, func(t *testing.T) {
			seg, err := store.OpenSegmentedLog(t.TempDir(), 4)
			if err != nil {
				t.Fatal(err)
			}
			defer seg.Close()
			ss, err := NewShardedSession(pub, SessionOptions{Shards: 4, Segmented: seg, Parallelism: 2})
			if err != nil {
				t.Fatal(err)
			}
			submitAll(t, ss, tc)
			res, err := ss.Finalize(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if err := AuditSegmentedLog(ctx, pub, seg, 0, 2); err != nil {
				t.Fatalf("offline segmented audit: %v", err)
			}
			st, err := TailAuditMerged(pub, seg, TailOptions{Workers: 2, Window: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			for {
				n, err := st.Poll()
				if err != nil {
					t.Fatalf("segmented tail poll: %v", err)
				}
				if n == 0 {
					break
				}
			}
			digest, ready, err := st.VerifyMerged(0)
			if err != nil {
				t.Fatalf("merged verify: %v", err)
			}
			if !ready {
				t.Fatal("merged epoch not ready after draining every segment")
			}
			if !bytes.Equal(digest, res.Digest) {
				t.Fatal("merged tail digest differs from MergedTranscriptDigest")
			}
		})
	}
}
