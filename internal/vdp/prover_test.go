package vdp

import (
	"errors"
	"testing"

	"repro/internal/field"
	"repro/internal/morra"
	"repro/internal/pedersen"
)

// TestProverStateMachineDiscipline: the Prover enforces its call order and
// rejects double moves, so an orchestration bug cannot silently produce an
// inconsistent protocol run.
func TestProverStateMachineDiscipline(t *testing.T) {
	pub := testPublic(t, 1, 1, 4)
	pr, err := NewProver(pub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.SetPublicCoins(nil); !errors.Is(err, ErrBadConfig) {
		t.Error("SetPublicCoins before CommitCoins accepted")
	}
	if _, err := pr.Finalize(); !errors.Is(err, ErrBadConfig) {
		t.Error("Finalize before SetPublicCoins accepted")
	}
	if _, err := pr.CommitCoins(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := pr.CommitCoins(nil); !errors.Is(err, ErrBadConfig) {
		t.Error("double CommitCoins accepted")
	}
	// Public coin validation.
	if err := pr.SetPublicCoins([][]byte{{0, 1}}); !errors.Is(err, ErrBadConfig) {
		t.Error("wrong coin count accepted")
	}
	if err := pr.SetPublicCoins([][]byte{{0, 1, 2, 0}}); !errors.Is(err, ErrBadConfig) {
		t.Error("non-bit public coin accepted")
	}
	if err := pr.SetPublicCoins([][]byte{{0, 1, 1, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := pr.SetPublicCoins([][]byte{{0, 1, 1, 0}}); !errors.Is(err, ErrBadConfig) {
		t.Error("double SetPublicCoins accepted")
	}
	if _, err := pr.Finalize(); err != nil {
		t.Errorf("honest Finalize failed: %v", err)
	}
}

func TestNewProverIndexValidation(t *testing.T) {
	pub := testPublic(t, 2, 1, 4)
	if _, err := NewProver(pub, 2); !errors.Is(err, ErrBadConfig) {
		t.Error("accepted out-of-range prover index")
	}
	if _, err := NewProver(pub, -1); !errors.Is(err, ErrBadConfig) {
		t.Error("accepted negative prover index")
	}
	if pr, err := NewProver(pub, 1); err != nil || pr.Index() != 1 {
		t.Errorf("NewProver(1): %v, index %d", err, pr.Index())
	}
}

func TestAcceptClientRejections(t *testing.T) {
	pub := testPublic(t, 2, 1, 4)
	sub, err := pub.NewClientSubmission(3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewProver(pub, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Payload meant for the other prover.
	if err := pr.AcceptClient(sub.Public, sub.Payloads[1]); !errors.Is(err, ErrClientReject) {
		t.Error("accepted payload addressed to prover 1")
	}
	// Nil payload.
	if err := pr.AcceptClient(sub.Public, nil); !errors.Is(err, ErrClientReject) {
		t.Error("accepted nil payload")
	}
	// Mismatched client ID.
	other, err := pub.NewClientSubmission(4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.AcceptClient(sub.Public, other.Payloads[0]); !errors.Is(err, ErrClientReject) {
		t.Error("accepted payload with mismatched client ID")
	}
	// Honest accept, then duplicate.
	if err := pr.AcceptClient(sub.Public, sub.Payloads[0]); err != nil {
		t.Fatal(err)
	}
	if err := pr.AcceptClient(sub.Public, sub.Payloads[0]); !errors.Is(err, ErrClientReject) {
		t.Error("accepted duplicate submission")
	}
}

func TestNewClientSubmissionValidation(t *testing.T) {
	pub := testPublic(t, 1, 1, 4)
	for _, bad := range []int{-1, 2, 7} {
		if _, err := pub.NewClientSubmission(0, bad, nil); !errors.Is(err, ErrClientReject) {
			t.Errorf("counting query accepted input %d", bad)
		}
	}
	pubHist := testPublic(t, 1, 3, 4)
	for _, bad := range []int{-1, 3, 100} {
		if _, err := pubHist.NewClientSubmission(0, bad, nil); !errors.Is(err, ErrClientReject) {
			t.Errorf("histogram accepted choice %d", bad)
		}
	}
}

func TestVerifyClientStructuralRejections(t *testing.T) {
	pub := testPublic(t, 2, 2, 4)
	sub, err := pub.NewClientSubmission(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Missing proof.
	noProof := *sub.Public
	noProof.OneHotProof = nil
	if err := pub.VerifyClient(&noProof); !errors.Is(err, ErrClientReject) {
		t.Error("accepted submission without proof")
	}
	// Wrong bin count.
	shortBins := *sub.Public
	shortBins.ShareCommitments = shortBins.ShareCommitments[:1]
	if err := pub.VerifyClient(&shortBins); !errors.Is(err, ErrClientReject) {
		t.Error("accepted submission with missing bins")
	}
	// Wrong prover count in a row.
	shortRow := *sub.Public
	shortRow.ShareCommitments = [][]*pedersen.Commitment{
		sub.Public.ShareCommitments[0][:1],
		sub.Public.ShareCommitments[1],
	}
	if err := pub.VerifyClient(&shortRow); !errors.Is(err, ErrClientReject) {
		t.Error("accepted submission with missing share commitments")
	}
}

// TestAggregateValidation exercises the Aggregate error paths.
func TestAggregateValidation(t *testing.T) {
	pub := testPublic(t, 2, 1, 4)
	v := NewVerifier(pub)
	f := pub.Field()
	mk := func(idx int) *ProverOutput {
		return &ProverOutput{Prover: idx, Y: []*field.Element{f.FromInt64(1)}, Z: []*field.Element{f.Zero()}}
	}
	if _, err := v.Aggregate([]*ProverOutput{mk(0)}); !errors.Is(err, ErrBadConfig) {
		t.Error("accepted missing prover output")
	}
	if _, err := v.Aggregate([]*ProverOutput{mk(0), mk(0)}); !errors.Is(err, ErrBadConfig) {
		t.Error("accepted duplicate prover outputs")
	}
	if _, err := v.Aggregate([]*ProverOutput{mk(0), mk(5)}); !errors.Is(err, ErrBadConfig) {
		t.Error("accepted out-of-range prover index")
	}
	rel, err := v.Aggregate([]*ProverOutput{mk(0), mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Raw[0] != 2 {
		t.Errorf("aggregate raw %d, want 2", rel.Raw[0])
	}
}

// TestAuditRejectsMorraEquivocation: a transcript whose recorded Morra
// reveal does not match its commitment must fail the audit — the auditor
// replays the coin-flipping verification too.
func TestAuditRejectsMorraEquivocation(t *testing.T) {
	pub := testPublic(t, 1, 1, 4)
	res, err := Run(pub, []int{1, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp := *res.Transcript
	rec := *cp.Morra[0]
	reveals := append([]*morra.RevealMsg{}, rec.Reveals...)
	tampered := *reveals[0]
	openings := append([]*pedersen.Opening{}, tampered.Openings...)
	openings[0] = &pedersen.Opening{X: pub.Field().FromInt64(12345), R: openings[0].R}
	tampered.Openings = openings
	reveals[0] = &tampered
	rec.Reveals = reveals
	cp.Morra = []*MorraRecord{&rec}
	if err := Audit(pub, &cp); !errors.Is(err, ErrAuditFail) {
		t.Errorf("morra equivocation passed audit: %v", err)
	}
}

// TestSessionContextSeparation: a client submission built for one
// deployment must not verify under a different one (different nb), because
// the Σ-proof session context differs.
func TestSessionContextSeparation(t *testing.T) {
	pubA := testPublic(t, 1, 1, 4)
	pubB := testPublic(t, 1, 1, 8) // different nb → different context
	sub, err := pubA.NewClientSubmission(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pubA.VerifyClient(sub.Public); err != nil {
		t.Fatalf("home deployment rejected its own client: %v", err)
	}
	if err := pubB.VerifyClient(sub.Public); !errors.Is(err, ErrClientReject) {
		t.Error("submission replayed across deployments")
	}
}
