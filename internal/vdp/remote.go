package vdp

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/store"
)

// Remote sharding: the entry points a multi-node deployment needs.
//
// internal/cluster runs one Session per node behind a thin router, with the
// shard boundary promoted from a goroutine boundary (ShardedSession) to a
// network boundary. Digest parity is the contract that makes the promotion
// safe: NewShardSession seeds node i of K with exactly the forkShard(i, K)
// substream a single-process ShardedSession would hand its sub-session i, so
// K nodes fed the same submissions produce per-shard transcripts — and
// therefore a MergedTranscriptDigest — byte-identical to the single-process
// run under the same root seed. Each node's board log speaks the ordinary
// single-session record grammar, so ResumeSession-style recovery and AuditLog
// work per node unchanged; the helpers here add the cross-node merge and
// audit on top, plus the zero-crypto byte-level peeks the router uses to
// route raw frames without decoding a single group element.

// NewShardSession opens the Session for one node of a K-node cluster: shard
// `shard` of `shards`. opts.Rand is read once for the root seed (every node
// must be given the same root seed bytes); the session then draws from the
// forkShard(shard, shards) substream, which is exactly what a single-process
// ShardedSession hands its sub-session `shard` — the seed arrangement that
// makes the cluster's merged digest byte-identical to the single-process
// one. opts.Store, when set, is the node's own board log (single-session
// grammar); opts.Shards and opts.Segmented must be unset — the shard split
// lives in the cluster topology, not inside the node's session.
func NewShardSession(pub *Public, opts SessionOptions, shard, shards int) (*Session, error) {
	if err := checkShardIndex(shard, shards); err != nil {
		return nil, err
	}
	if opts.Shards > 1 || opts.Segmented != nil {
		return nil, fmt.Errorf("%w: a shard session is one node of an external shard split; leave Shards/Segmented unset", ErrBadConfig)
	}
	if err := ensureEmptyLog(opts.Store); err != nil {
		return nil, err
	}
	root, err := newRandSource(opts.Rand)
	if err != nil {
		return nil, err
	}
	return newSessionFromSource(NewEngine(pub, opts.Parallelism), opts, root.forkShard(shard, shards)), nil
}

// ResumeShardSession recovers one cluster node's Session from its board log
// after a restart, with ResumeSession's exact replay semantics but the
// shard's forkShard substream, so the recovered node still finalizes to the
// same per-shard transcript the uninterrupted run would have produced.
// opts.Rand must carry the original root seed.
func ResumeShardSession(ctx context.Context, pub *Public, opts SessionOptions, shard, shards int) (*Session, error) {
	if err := checkShardIndex(shard, shards); err != nil {
		return nil, err
	}
	if opts.Shards > 1 || opts.Segmented != nil {
		return nil, fmt.Errorf("%w: a shard session is one node of an external shard split; leave Shards/Segmented unset", ErrBadConfig)
	}
	root, err := newRandSource(opts.Rand)
	if err != nil {
		return nil, err
	}
	return resumeSessionFromSource(ctx, pub, opts, root.forkShard(shard, shards))
}

// checkShardIndex validates a (shard, shards) pair.
func checkShardIndex(shard, shards int) error {
	if shards < 1 {
		return fmt.Errorf("%w: shard count %d", ErrBadConfig, shards)
	}
	if shard < 0 || shard >= shards {
		return fmt.Errorf("%w: shard index %d out of range [0,%d)", ErrBadConfig, shard, shards)
	}
	return nil
}

// MergeReleases combines per-shard transcript releases into the epoch's
// combined release, exactly as ShardedSession.Finalize merges them: raw
// counts add, the debiasing mean and standard deviation scale with the shard
// count. The cluster router uses it to produce the merged release from the K
// node transcripts the seal handshake collects.
func MergeReleases(pub *Public, shards []*Transcript) (*Release, error) {
	return mergeReleases(pub, shards)
}

// EncodeMergedSealRecord serializes a merged-seal record body (shard count +
// merged digest), the RecordMergedSeal payload a ShardedSession appends to
// its manifest. Cluster nodes persist the router's merged-seal broadcast
// with the same encoding, so the evidence format is identical in-process and
// cross-node.
func EncodeMergedSealRecord(shards int, digest []byte) []byte {
	return encodeMergedSeal(shards, digest)
}

// DecodeMergedSealRecord parses a merged-seal record body.
func DecodeMergedSealRecord(b []byte) (shards int, digest []byte, err error) {
	return decodeMergedSeal(b)
}

// TranscriptFromLog extracts and decodes the sealed transcript of one epoch
// from a board log, assembling chunked seals. It does not audit anything —
// it is the fetch half of a cross-node audit, which feeds the result to
// AuditMerged.
func TranscriptFromLog(pub *Public, log store.BoardLog, epoch int) (*Transcript, error) {
	var sealBytes []byte
	var chunks sealAssembly
	err := log.Replay(func(rec *store.Record) error {
		if int(rec.Epoch) != epoch {
			return nil
		}
		switch rec.Kind {
		case RecordSeal:
			sealBytes = rec.Payload
		case RecordSealChunk:
			done, err := chunks.add(rec.Payload)
			if err != nil {
				return err
			}
			if done != nil {
				sealBytes = done
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if sealBytes == nil {
		return nil, fmt.Errorf("vdp: epoch %d is not sealed in the board log", epoch)
	}
	return pub.DecodeTranscript(sealBytes)
}

// AuditMergedLogs audits one merged epoch across the per-node board logs of
// a cluster, in shard order: each log is audited exactly as AuditLog audits
// a single session's log (sealed transcript fully re-verified AND
// cross-checked against the log's own per-arrival records), then the shard
// map is checked — every client on the shard ShardOf assigns it, no client
// on two shards — and the merged digest over the K recovered transcripts is
// returned for comparison against the recorded merged seal. It is
// AuditSegmentedLog with the segments fetched from K machines instead of one
// directory. workers follows the AuditParallel convention (0 = all cores).
func AuditMergedLogs(ctx context.Context, pub *Public, logs []store.BoardLog, epoch, workers int) ([]byte, error) {
	if len(logs) == 0 {
		return nil, fmt.Errorf("%w: no node logs to audit", ErrAuditFail)
	}
	ts := make([]*Transcript, len(logs))
	for i, lg := range logs {
		t, err := auditLogEpoch(ctx, pub, lg, epoch, workers)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		ts[i] = t
	}
	if err := checkShardAssignment(ts); err != nil {
		return nil, err
	}
	return MergedTranscriptDigest(pub, ts), nil
}

// EncodeSubmitPayload serializes the body of a one-per-frame "submit"
// transport frame: u32 publicLen | EncodeClientPublic | EncodeClientPayload
// (the prover-0 payload). This is the single-submission client wire layout
// vdpclient sends and vdpserver decodes; it lives here so every binary —
// client, server, router — speaks one definition.
func (p *Public) EncodeSubmitPayload(sub *ClientSubmission) ([]byte, error) {
	if sub == nil || sub.Public == nil || len(sub.Payloads) < 1 {
		return nil, fmt.Errorf("%w: submit payload needs a public part and a prover-0 payload", ErrBadConfig)
	}
	pubEnc := p.EncodeClientPublic(sub.Public)
	plEnc := p.EncodeClientPayload(sub.Payloads[0])
	out := make([]byte, 4, 4+len(pubEnc)+len(plEnc))
	binary.BigEndian.PutUint32(out, uint32(len(pubEnc)))
	out = append(out, pubEnc...)
	out = append(out, plEnc...)
	return out, nil
}

// DecodeSubmitPayload parses and fully validates a "submit" frame body,
// checking that the public part and the payload agree on the client's
// identity.
func (p *Public) DecodeSubmitPayload(b []byte) (*ClientSubmission, error) {
	pubRaw, plRaw, err := splitSubmitPayload(b)
	if err != nil {
		return nil, err
	}
	cp, err := p.DecodeClientPublic(pubRaw)
	if err != nil {
		return nil, err
	}
	pl, err := p.DecodeClientPayload(plRaw)
	if err != nil {
		return nil, err
	}
	if pl.ClientID != cp.ID || pl.Prover != 0 {
		return nil, fmt.Errorf("vdp: submission parts disagree on identity")
	}
	return &ClientSubmission{Public: cp, Payloads: []*ClientPayload{pl}}, nil
}

// splitSubmitPayload cuts a submit-frame body into its raw public and
// payload encodings without decoding either.
func splitSubmitPayload(b []byte) (pubRaw, plRaw []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("vdp: short submit payload")
	}
	n := binary.BigEndian.Uint32(b[:4])
	if int64(n) > int64(len(b)-4) {
		return nil, nil, fmt.Errorf("vdp: submit payload length field out of range")
	}
	return b[4 : 4+n], b[4+n:], nil
}

// peekClientPublicID reads the client ID off a raw EncodeClientPublic
// encoding without validating anything beyond the version byte — the
// routing peek. The ID sits at a fixed offset: version byte, then u32 ID.
func peekClientPublicID(pubRaw []byte) (int, error) {
	if len(pubRaw) < 5 {
		return 0, fmt.Errorf("vdp: truncated encoding")
	}
	if pubRaw[0] != WireVersion {
		return 0, fmt.Errorf("vdp: unsupported wire format version %d (this build speaks %d)", pubRaw[0], WireVersion)
	}
	return int(binary.BigEndian.Uint32(pubRaw[1:5])), nil
}

// PeekSubmitPayloadID returns the client ID of a "submit" frame body without
// any cryptographic validation. A shard router needs only the ID to pick a
// backend; the owning node does the real decode and verification.
func PeekSubmitPayloadID(b []byte) (int, error) {
	pubRaw, _, err := splitSubmitPayload(b)
	if err != nil {
		return 0, err
	}
	return peekClientPublicID(pubRaw)
}

// RepackSubmitPayload converts a "submit" frame body into the equivalent
// single batch submission record (EncodeClientSubmission layout: version |
// lp(public) | u32 1 | lp(payload)) and returns the peeked client ID, all by
// byte shuffling — no decoding, no validation beyond framing. The router
// uses it to forward one-per-frame submits to a backend as a batch of one,
// so a rejected submission earns a verdict reply instead of erroring (and
// dropping) the router's persistent backend connection.
func RepackSubmitPayload(b []byte) (rec []byte, id int, err error) {
	pubRaw, plRaw, err := splitSubmitPayload(b)
	if err != nil {
		return nil, 0, err
	}
	id, err = peekClientPublicID(pubRaw)
	if err != nil {
		return nil, 0, err
	}
	var w wireWriter
	w.version()
	w.lpBytes(pubRaw)
	w.u32(1)
	w.lpBytes(plRaw)
	return w.b, id, nil
}

// SplitSubmissionBatch cuts an encoded "submit-batch" frame body into its
// raw per-submission records and peeks each record's client ID, without any
// cryptographic validation — the router's partitioning scan. Each returned
// record is the exact EncodeClientSubmission encoding (version | lp(public)
// | payload count | payloads), so EncodeRawSubmissionBatch can reassemble
// per-shard sub-batches byte-identically.
func SplitSubmissionBatch(b []byte) (recs [][]byte, ids []int, err error) {
	r := wireReader{b: b}
	r.version()
	n := r.u32()
	if r.err == nil && n > MaxBatchClients {
		return nil, nil, fmt.Errorf("vdp: batch claims %d submissions (limit %d)", n, MaxBatchClients)
	}
	recs = make([][]byte, 0, n)
	ids = make([]int, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		raw := r.lpBytes()
		if r.err != nil {
			break
		}
		// Record layout: version | u32 publicLen | public | ... — the public
		// encoding (and its leading version + u32 ID) sits at offset 5.
		rr := wireReader{b: raw}
		rr.version()
		pubRaw := rr.lpBytes()
		if rr.err != nil {
			return nil, nil, fmt.Errorf("vdp: batch submission %d: %w", i, rr.err)
		}
		id, err := peekClientPublicID(pubRaw)
		if err != nil {
			return nil, nil, fmt.Errorf("vdp: batch submission %d: %w", i, err)
		}
		recs = append(recs, raw)
		ids = append(ids, id)
	}
	if err := r.finish(); err != nil {
		return nil, nil, err
	}
	return recs, ids, nil
}

// EncodeRawSubmissionBatch reassembles raw submission records (as returned
// by SplitSubmissionBatch) into a "submit-batch" frame body. Because each
// record is carried verbatim, a backend decoding the sub-batch sees bytes
// identical to what the client sent.
func EncodeRawSubmissionBatch(recs [][]byte) []byte {
	var w wireWriter
	w.version()
	w.u32(uint32(len(recs)))
	for _, rec := range recs {
		w.lpBytes(rec)
	}
	return w.b
}
