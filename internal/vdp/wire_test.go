package vdp

import (
	"testing"

	"repro/internal/field"
)

func wireTestPublic(t *testing.T, k, m int) *Public {
	t.Helper()
	pub, err := Setup(Config{Provers: k, Bins: m, Coins: 8})
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

func TestClientPublicWireRoundTrip(t *testing.T) {
	for _, tc := range []struct{ k, m, choice int }{
		{1, 1, 1}, {2, 1, 0}, {2, 3, 2}, {3, 4, 0},
	} {
		pub := wireTestPublic(t, tc.k, tc.m)
		sub, err := pub.NewClientSubmission(9, tc.choice, nil)
		if err != nil {
			t.Fatal(err)
		}
		enc := pub.EncodeClientPublic(sub.Public)
		back, err := pub.DecodeClientPublic(enc)
		if err != nil {
			t.Fatalf("K=%d M=%d: %v", tc.k, tc.m, err)
		}
		// The decoded submission must still pass the legality check — the
		// strongest possible round-trip assertion.
		if err := pub.VerifyClient(back); err != nil {
			t.Errorf("K=%d M=%d: decoded submission fails verification: %v", tc.k, tc.m, err)
		}
		if back.ID != 9 {
			t.Errorf("ID round trip: %d", back.ID)
		}
	}
}

func TestClientPublicWireRejectsGarbage(t *testing.T) {
	pub := wireTestPublic(t, 2, 1)
	sub, err := pub.NewClientSubmission(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := pub.EncodeClientPublic(sub.Public)
	if _, err := pub.DecodeClientPublic(enc[:len(enc)/2]); err == nil {
		t.Error("truncated encoding accepted")
	}
	if _, err := pub.DecodeClientPublic(append(enc, 0xff)); err == nil {
		t.Error("padded encoding accepted")
	}
	// Corrupt a commitment byte: must fail group decoding or verification.
	bad := append([]byte{}, enc...)
	bad[12] ^= 0xff
	if back, err := pub.DecodeClientPublic(bad); err == nil {
		if err := pub.VerifyClient(back); err == nil {
			t.Error("corrupted submission decoded AND verified")
		}
	}
	// Absurd dimension claims are bounded.
	huge := []byte{WireVersion, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff}
	if _, err := pub.DecodeClientPublic(huge); err == nil {
		t.Error("absurd bin count accepted")
	}
}

// TestWireVersionNegotiation: every encoding leads with the format version;
// decoders reject unknown versions instead of misparsing, and the error
// names both versions so operators can diagnose mixed deployments.
func TestWireVersionNegotiation(t *testing.T) {
	pub := wireTestPublic(t, 2, 1)
	sub, err := pub.NewClientSubmission(3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := &ProverOutput{Prover: 0, Y: []*field.Element{pub.Field().FromInt64(4)}, Z: []*field.Element{pub.Field().FromInt64(5)}}
	encodings := map[string][]byte{
		"client-public":  pub.EncodeClientPublic(sub.Public),
		"client-payload": pub.EncodeClientPayload(sub.Payloads[0]),
		"prover-output":  pub.EncodeProverOutput(out),
	}
	decode := map[string]func([]byte) error{
		"client-public":  func(b []byte) error { _, err := pub.DecodeClientPublic(b); return err },
		"client-payload": func(b []byte) error { _, err := pub.DecodeClientPayload(b); return err },
		"prover-output":  func(b []byte) error { _, err := pub.DecodeProverOutput(b); return err },
	}
	for name, enc := range encodings {
		if enc[0] != WireVersion {
			t.Errorf("%s: leading byte %d, want version %d", name, enc[0], WireVersion)
		}
		if err := decode[name](enc); err != nil {
			t.Errorf("%s: current version rejected: %v", name, err)
		}
		for _, v := range []byte{0, WireVersion + 1, 0xff} {
			bad := append([]byte{v}, enc[1:]...)
			if err := decode[name](bad); err == nil {
				t.Errorf("%s: unknown version %d accepted", name, v)
			}
		}
		if err := decode[name](nil); err == nil {
			t.Errorf("%s: empty encoding accepted", name)
		}
	}
}

func TestClientPayloadWireRoundTrip(t *testing.T) {
	pub := wireTestPublic(t, 2, 3)
	sub, err := pub.NewClientSubmission(4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range sub.Payloads {
		enc := pub.EncodeClientPayload(pl)
		back, err := pub.DecodeClientPayload(enc)
		if err != nil {
			t.Fatal(err)
		}
		if back.ClientID != pl.ClientID || back.Prover != pl.Prover || len(back.Openings) != len(pl.Openings) {
			t.Errorf("payload metadata mismatch")
		}
		for j := range pl.Openings {
			if !back.Openings[j].X.Equal(pl.Openings[j].X) || !back.Openings[j].R.Equal(pl.Openings[j].R) {
				t.Errorf("opening %d mismatch", j)
			}
		}
		// Decoded payload must be accepted by the target prover.
		pr, err := NewProver(pub, pl.Prover)
		if err != nil {
			t.Fatal(err)
		}
		if err := pr.AcceptClient(sub.Public, back); err != nil {
			t.Errorf("prover %d rejected decoded payload: %v", pl.Prover, err)
		}
	}
}

func TestClientPayloadWireRejectsGarbage(t *testing.T) {
	pub := wireTestPublic(t, 1, 1)
	sub, err := pub.NewClientSubmission(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := pub.EncodeClientPayload(sub.Payloads[0])
	if _, err := pub.DecodeClientPayload(enc[:len(enc)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := pub.DecodeClientPayload([]byte{WireVersion, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("absurd opening count accepted")
	}
}

func TestProverOutputWireRoundTrip(t *testing.T) {
	pub := wireTestPublic(t, 2, 2)
	f := pub.Field()
	out := &ProverOutput{
		Prover: 1,
		Y:      []*field.Element{f.FromInt64(10), f.FromInt64(20)},
		Z:      []*field.Element{f.MustRand(nil), f.MustRand(nil)},
	}
	enc := pub.EncodeProverOutput(out)
	back, err := pub.DecodeProverOutput(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Prover != 1 || len(back.Y) != 2 {
		t.Fatalf("metadata mismatch: %+v", back)
	}
	for j := range out.Y {
		if !back.Y[j].Equal(out.Y[j]) || !back.Z[j].Equal(out.Z[j]) {
			t.Errorf("bin %d mismatch", j)
		}
	}
	if _, err := pub.DecodeProverOutput(enc[:5]); err == nil {
		t.Error("truncated output accepted")
	}
}

// TestLpBytesLargeAndHostile: a length-prefixed segment bigger than the old
// 8 MiB heuristic cap (a seal for a high-nb deployment produces these
// legitimately) must round-trip, while a hostile length prefix with no
// bytes behind it must fail as truncation without allocating.
func TestLpBytesLargeAndHostile(t *testing.T) {
	big := make([]byte, 9<<20)
	big[0], big[len(big)-1] = 1, 2
	var w wireWriter
	w.lpBytes(big)
	r := wireReader{b: w.b}
	got := r.lpBytes()
	if err := r.finish(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(big) || got[0] != 1 || got[len(got)-1] != 2 {
		t.Fatal("large length-prefixed segment did not round-trip")
	}

	hostile := wireReader{b: []byte{0xff, 0xff, 0xff, 0xff}}
	if out := hostile.lpBytes(); out != nil {
		t.Fatal("hostile length prefix returned data")
	}
	if hostile.finish() == nil {
		t.Fatal("hostile length prefix accepted")
	}
}
