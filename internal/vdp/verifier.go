package vdp

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"repro/internal/field"
	"repro/internal/pedersen"
	"repro/internal/sigma"
)

// Verifier is the public verifying algorithm Vfr. It holds only public
// data; anyone can instantiate one from the bulletin board and reach the
// same verdicts, which is what Definition 7's public verifiability means in
// practice.
type Verifier struct {
	pub     *Public
	workers int             // worker-pool width for batch checks (>= 1)
	valid   []*ClientPublic // accepted roster, fixed by VerifyClients
}

// NewVerifier creates a verifier for a deployment. Verification uses
// random-linear-combination batching but stays on one goroutine; use
// NewVerifierParallel to spread the batch checks over a worker pool.
func NewVerifier(pub *Public) *Verifier {
	return NewVerifierParallel(pub, 1)
}

// NewVerifierParallel creates a verifier whose batch checks (client board,
// coin commitments) chunk their multi-exponentiations across up to `workers`
// goroutines. workers <= 0 selects GOMAXPROCS. Verdicts are identical at
// every width; only wall-clock time changes.
func NewVerifierParallel(pub *Public, workers int) *Verifier {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Verifier{pub: pub, workers: workers}
}

// VerifyClients runs Line 3 over the full client board, fixing the public
// roster of valid inputs. It returns the rejection reasons for the others.
// The whole board is decided by one batched Σ-OR check (falling back to
// per-client verification only to attribute a failure).
func (v *Verifier) VerifyClients(pubs []*ClientPublic) (accepted int, rejected map[int]error) {
	accepted, rejected, _ = v.verifyClients(context.Background(), pubs)
	return accepted, rejected
}

// verifyClients is VerifyClients with cancellation: a cancelled ctx returns
// ctx.Err() without fixing any roster.
func (v *Verifier) verifyClients(ctx context.Context, pubs []*ClientPublic) (accepted int, rejected map[int]error, err error) {
	valid, rejected, err := v.pub.filterValidClientsBatch(ctx, pubs, v.workers)
	if err != nil {
		return 0, nil, err
	}
	v.valid = valid
	return len(v.valid), rejected, nil
}

// adoptRoster installs a roster whose verdicts were already decided — by a
// Session verifying submissions eagerly as they arrived — so the pipeline
// does not re-verify the board. The session's per-client verdicts are
// identical to the batch check's, which is what keeps eager and batch
// transcripts interchangeable.
func (v *Verifier) adoptRoster(valid []*ClientPublic) { v.valid = valid }

// ValidClients returns the roster fixed by VerifyClients.
func (v *Verifier) ValidClients() []*ClientPublic { return v.valid }

// VerifyCoinCommitments runs Lines 5-6 for one prover: every noise-coin
// commitment must carry a valid Σ-OR proof. On failure the prover is
// publicly identified ("the veriﬁer aborts the protocol and publicly
// declares that Pv_k cheated").
func (v *Verifier) VerifyCoinCommitments(msg *CoinCommitMsg) error {
	if msg == nil {
		return fmt.Errorf("%w: missing coin commitments", ErrProverCheat)
	}
	m := v.pub.cfg.Bins
	nb := v.pub.nb
	if len(msg.Commitments) != m || len(msg.Proofs) != m {
		return fmt.Errorf("%w: prover %d coin message covers %d/%d bins, want %d",
			ErrProverCheat, msg.Prover, len(msg.Commitments), len(msg.Proofs), m)
	}
	// Fold every bin's proofs into ONE random-linear-combination batch —
	// M·nb Σ-OR proofs, a single multi-exponentiation chunked across the
	// verifier's workers. Much faster than per-proof (or even per-bin)
	// verification in the honest case.
	batch := sigma.NewBitBatch(v.pub.pp, nil)
	for j := 0; j < m; j++ {
		if len(msg.Commitments[j]) != nb || len(msg.Proofs[j]) != nb {
			return fmt.Errorf("%w: prover %d bin %d has %d commitments / %d proofs, want %d",
				ErrProverCheat, msg.Prover, j, len(msg.Commitments[j]), len(msg.Proofs[j]), nb)
		}
		ctx := v.pub.proverContext(msg.Prover, j)
		for l := 0; l < nb; l++ {
			if err := batch.Add(msg.Commitments[j][l], msg.Proofs[j][l], coinContext(ctx, l)); err != nil {
				return fmt.Errorf("%w: prover %d bin %d: index %d: %v", ErrProverCheat, msg.Prover, j, l, err)
			}
		}
	}
	if batch.Check(v.workers) == nil {
		return nil
	}
	// The batch failed: some proof is bad. Re-verify sequentially so the
	// public accusation names the offending bin and coin index.
	for j := 0; j < m; j++ {
		ctx := v.pub.proverContext(msg.Prover, j)
		for l := 0; l < nb; l++ {
			if err := sigma.VerifyBit(v.pub.pp, msg.Commitments[j][l], msg.Proofs[j][l], coinContext(ctx, l)); err != nil {
				return fmt.Errorf("%w: prover %d bin %d: index %d: %v", ErrProverCheat, msg.Prover, j, l, err)
			}
		}
	}
	return fmt.Errorf("%w: prover %d: batch equation failed but sequential pass succeeded (astronomically unlikely)",
		ErrProverCheat, msg.Prover)
}

// AdjustedCoinCommitments applies Line 12: for each coin, ĉ' = c' when the
// public bit is 0 and Com(1,0) ⊗ c'^{-1} when it is 1, so the verifier
// holds commitments to the XORed bits v̂ without learning them.
func (v *Verifier) AdjustedCoinCommitments(msg *CoinCommitMsg, publicBits [][]byte) ([][]*pedersen.Commitment, error) {
	m := v.pub.cfg.Bins
	nb := v.pub.nb
	if len(publicBits) != m {
		return nil, fmt.Errorf("%w: public coins cover %d bins, want %d", ErrBadConfig, len(publicBits), m)
	}
	one := v.pub.pp.OneNoRandomness()
	out := make([][]*pedersen.Commitment, m)
	for j := 0; j < m; j++ {
		if len(publicBits[j]) != nb {
			return nil, fmt.Errorf("%w: bin %d has %d public coins, want %d", ErrBadConfig, j, len(publicBits[j]), nb)
		}
		out[j] = make([]*pedersen.Commitment, nb)
		for l := 0; l < nb; l++ {
			c := msg.Commitments[j][l]
			if publicBits[j][l] == 1 {
				out[j][l] = one.Sub(c)
			} else {
				out[j][l] = c
			}
		}
	}
	return out, nil
}

// CheckProverOutput runs Line 13 for one prover: the product of the valid
// clients' share commitments (this prover's column) and the adjusted coin
// commitments must equal Com(y_j, z_j) for every bin. Any tampering with
// the aggregate — biased output, perturbed randomness, dropped or phantom
// clients, skipped noise — breaks the equation unless the prover can break
// binding (Theorem 4.1, computational soundness).
func (v *Verifier) CheckProverOutput(msg *CoinCommitMsg, publicBits [][]byte, out *ProverOutput) error {
	if out == nil || msg == nil {
		return fmt.Errorf("%w: missing prover output", ErrProverCheat)
	}
	if out.Prover != msg.Prover {
		return fmt.Errorf("%w: output from prover %d but coins from prover %d", ErrProverCheat, out.Prover, msg.Prover)
	}
	m := v.pub.cfg.Bins
	if len(out.Y) != m || len(out.Z) != m {
		return fmt.Errorf("%w: prover %d output covers %d/%d bins, want %d",
			ErrProverCheat, out.Prover, len(out.Y), len(out.Z), m)
	}
	adjusted, err := v.AdjustedCoinCommitments(msg, publicBits)
	if err != nil {
		return err
	}
	for j := 0; j < m; j++ {
		expected := v.pub.pp.Zero()
		for _, cl := range v.valid {
			expected = expected.Add(cl.ShareCommitments[j][out.Prover])
		}
		for _, c := range adjusted[j] {
			expected = expected.Add(c)
		}
		if !v.pub.pp.Verify(expected, out.Y[j], out.Z[j]) {
			return fmt.Errorf("%w: prover %d bin %d: commitment product does not open to reported (y, z)",
				ErrProverCheat, out.Prover, j)
		}
	}
	return nil
}

// Release is the verified protocol output: per-bin raw noisy counts
// y_j = Σ_k y_{j,k} (each carrying K·Binomial(nb, ½) noise) and the
// debiased point estimates.
type Release struct {
	// Raw[j] is the verified noisy count for bin j.
	Raw []int64
	// Estimate[j] = Raw[j] - K·nb/2, an unbiased estimate of the true
	// count.
	Estimate []float64
	// Stddev is the standard deviation of each estimate: sqrt(K·nb)/2.
	Stddev float64
}

// Aggregate combines the per-prover outputs into the final release
// ("we treat the y_k's as shares, and calculate y = Σ_k y_k as the noisy
// sum"). It requires exactly one output per prover. The field sums are
// interpreted as small non-negative integers, which is valid because
// n + K·nb ≪ q.
func (v *Verifier) Aggregate(outs []*ProverOutput) (*Release, error) {
	k := v.pub.cfg.Provers
	if len(outs) != k {
		return nil, fmt.Errorf("%w: have %d prover outputs, want %d", ErrBadConfig, len(outs), k)
	}
	seen := make(map[int]bool, k)
	m := v.pub.cfg.Bins
	f := v.pub.Field()
	sums := make([]*field.Element, m)
	for j := range sums {
		sums[j] = f.Zero()
	}
	for _, o := range outs {
		if o.Prover < 0 || o.Prover >= k || seen[o.Prover] {
			return nil, fmt.Errorf("%w: duplicate or out-of-range prover %d", ErrBadConfig, o.Prover)
		}
		seen[o.Prover] = true
		if len(o.Y) != m {
			return nil, fmt.Errorf("%w: prover %d output has %d bins", ErrBadConfig, o.Prover, len(o.Y))
		}
		for j := 0; j < m; j++ {
			sums[j] = sums[j].Add(o.Y[j])
		}
	}
	rel := &Release{
		Raw:      make([]int64, m),
		Estimate: make([]float64, m),
		Stddev:   stddev(k, v.pub.nb),
	}
	mean := v.pub.NoiseMean()
	for j := 0; j < m; j++ {
		raw, ok := sums[j].Int64()
		if !ok {
			return nil, fmt.Errorf("%w: bin %d aggregate does not fit in int64 (field wraparound?)", ErrBadConfig, j)
		}
		rel.Raw[j] = raw
		rel.Estimate[j] = float64(raw) - mean
	}
	return rel, nil
}

func stddev(k, nb int) float64 {
	return math.Sqrt(float64(k)*float64(nb)) / 2
}
