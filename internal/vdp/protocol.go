package vdp

import (
	"context"
	"fmt"
	"io"

	"repro/internal/morra"
)

// MorraRecord is the public transcript of one O_morra realisation: the
// 2-party Πmorra run between a prover and the verifier that produced the
// prover's public coins. Recording the commit and reveal messages lets any
// auditor recompute the coins and verify nobody equivocated.
type MorraRecord struct {
	Prover  int
	Commits []*morra.CommitMsg
	Reveals []*morra.RevealMsg
}

// Transcript is the complete public record of a ΠBin execution — exactly
// the bulletin-board contents. Audit re-derives every verifier verdict from
// it, so a release is trustworthy iff its transcript audits cleanly.
type Transcript struct {
	Clients  []*ClientPublic
	CoinMsgs []*CoinCommitMsg // one per prover, indexed by position
	Morra    []*MorraRecord   // one per prover
	Outputs  []*ProverOutput  // one per prover
	Release  *Release
}

// RunOptions configures a local protocol execution.
type RunOptions struct {
	// Malice assigns deviations to prover indices; absent provers are
	// honest.
	Malice map[int]Malice
	// Rand is the randomness source (nil = crypto/rand). When set, a
	// single root seed is read from it and expanded into independent
	// per-task substreams (see rand.go), so the same seed produces a
	// byte-identical transcript at every Parallelism setting.
	Rand io.Reader
	// Parallelism is the worker-pool width of the execution engine:
	// 0 selects runtime.GOMAXPROCS(0), 1 forces sequential execution.
	Parallelism int
}

// RunResult is the outcome of a successful protocol execution.
type RunResult struct {
	Release         *Release
	Transcript      *Transcript
	RejectedClients map[int]error
}

// Run executes a full ΠBin instance locally: clients with the given
// choices, K provers, and the public verifier, with Morra realising the
// public-coin oracle. It returns an ErrProverCheat-wrapped error the moment
// the verifier detects a misbehaving prover (which is the point: malice
// must never produce a silent wrong answer). Rejected clients do not abort
// the run; they are excluded from the public roster and reported.
//
// Run is a compatibility wrapper over a one-epoch Session with deferred
// (batched) verification; callers that receive submissions incrementally
// should hold a Session instead. Execution is delegated to the staged
// pipeline engine (see Engine), fanned out over RunOptions.Parallelism
// workers; the default uses every core.
func Run(pub *Public, choices []int, opts *RunOptions) (*RunResult, error) {
	return RunContext(context.Background(), pub, choices, opts)
}

// RunContext is Run with cancellation: the pipeline checks ctx between (and
// inside) stages and returns ctx.Err() promptly once it is cancelled.
func RunContext(ctx context.Context, pub *Public, choices []int, opts *RunOptions) (*RunResult, error) {
	if opts == nil {
		opts = &RunOptions{}
	}
	return NewEngine(pub, opts.Parallelism).RunContext(ctx, choices, opts)
}

// RunWithSubmissions executes the protocol over pre-built client material,
// allowing tests to inject malformed or adversarial client submissions.
// payloads maps client ID to its K per-prover payloads.
func RunWithSubmissions(pub *Public, publics []*ClientPublic, payloads map[int][]*ClientPayload, opts *RunOptions) (*RunResult, error) {
	return RunWithSubmissionsContext(context.Background(), pub, publics, payloads, opts)
}

// RunWithSubmissionsContext is RunWithSubmissions with cancellation.
func RunWithSubmissionsContext(ctx context.Context, pub *Public, publics []*ClientPublic, payloads map[int][]*ClientPayload, opts *RunOptions) (*RunResult, error) {
	if opts == nil {
		opts = &RunOptions{}
	}
	return NewEngine(pub, opts.Parallelism).RunWithSubmissionsContext(ctx, publics, payloads, opts)
}

// runMorra executes the 2-party Πmorra between prover pk and the verifier,
// returning the flat bit string and the public record. Each party draws
// from its own substream (labelMorra, 2·pk + party), so concurrent Morra
// instances stay deterministic under a fixed seed.
func runMorra(pub *Public, pk, batch int, rs *randSource) ([]byte, *MorraRecord, error) {
	parties := make([]*morra.Party, 2)
	commits := make([]*morra.CommitMsg, 2)
	for i := range parties {
		p, err := morra.NewParty(pub.pp, i, 2, batch)
		if err != nil {
			return nil, nil, err
		}
		parties[i] = p
		cm, err := p.Commit(rs.stream(labelMorra, 2*pk+i))
		if err != nil {
			return nil, nil, err
		}
		commits[i] = cm
	}
	reveals := make([]*morra.RevealMsg, 2)
	for i := 1; i >= 0; i-- { // reverse reveal order per Algorithm 1
		rv, err := parties[i].Reveal()
		if err != nil {
			return nil, nil, err
		}
		reveals[i] = rv
	}
	xs, err := morra.Combine(pub.pp, commits, reveals)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: morra with prover %d: %v", ErrProverCheat, pk, err)
	}
	return morra.Bits(xs), &MorraRecord{Prover: pk, Commits: commits, Reveals: reveals}, nil
}

// reshapeBits splits a flat bit string into [bins][nb].
func reshapeBits(bits []byte, bins, nb int) [][]byte {
	out := make([][]byte, bins)
	for j := 0; j < bins; j++ {
		out[j] = bits[j*nb : (j+1)*nb]
	}
	return out
}

// Audit replays every public verification step from a transcript: client
// legality, coin-commitment Σ-OR proofs, Morra opening checks and coin
// recomputation, the Line 13 product check for every prover, and the final
// aggregation. It returns nil iff an independent auditor would accept the
// release. This function is the "Auditable" column of Table 2 made
// executable. It uses every core; AuditParallel controls the width.
func Audit(pub *Public, t *Transcript) error { return AuditParallel(pub, t, 0) }

// AuditContext is Audit with cancellation: a cancelled ctx aborts the
// replay between checks and returns ctx.Err() instead of a verdict.
func AuditContext(ctx context.Context, pub *Public, t *Transcript) error {
	return auditParallel(ctx, pub, t, 0)
}

// AuditParallel is Audit over an explicit worker-pool width (0 =
// GOMAXPROCS, 1 = sequential). The client board is decided by one batched
// Σ-OR check, per-prover records are audited concurrently, and the verdict
// is identical at every width.
func AuditParallel(pub *Public, t *Transcript, workers int) error {
	return auditParallel(context.Background(), pub, t, workers)
}

func auditParallel(ctx context.Context, pub *Public, t *Transcript, workers int) error {
	if t == nil || t.Release == nil {
		return fmt.Errorf("%w: empty transcript", ErrAuditFail)
	}
	k := pub.cfg.Provers
	if len(t.CoinMsgs) != k || len(t.Morra) != k || len(t.Outputs) != k {
		return fmt.Errorf("%w: transcript covers %d/%d/%d prover records, want %d",
			ErrAuditFail, len(t.CoinMsgs), len(t.Morra), len(t.Outputs), k)
	}

	workers = NewEngine(pub, workers).Workers()
	verifier := NewVerifierParallel(pub, workers)
	if _, _, err := verifier.verifyClients(ctx, t.Clients); err != nil {
		return err
	}

	// The per-prover records are audited concurrently, so divide the
	// multiexp-chunking width among the outer tasks: nesting W-wide chunking
	// inside a W-wide fan-out would repeat the shared squaring chain W times
	// over with no latency gain.
	inner := workers / k
	if inner < 1 {
		inner = 1
	}
	proverVerifier := NewVerifierParallel(pub, inner)
	proverVerifier.valid = verifier.valid

	err := forEach(ctx, workers, k, func(pk int) error {
		msg := t.CoinMsgs[pk]
		if msg.Prover != pk {
			return fmt.Errorf("%w: coin message %d claims prover %d", ErrAuditFail, pk, msg.Prover)
		}
		if err := proverVerifier.VerifyCoinCommitments(msg); err != nil {
			return fmt.Errorf("%w: %v", ErrAuditFail, err)
		}
		rec := t.Morra[pk]
		xs, err := morra.Combine(pub.pp, rec.Commits, rec.Reveals)
		if err != nil {
			return fmt.Errorf("%w: morra record for prover %d: %v", ErrAuditFail, pk, err)
		}
		bits := morra.Bits(xs)
		if len(bits) != pub.cfg.Bins*pub.nb {
			return fmt.Errorf("%w: morra record for prover %d has %d coins, want %d",
				ErrAuditFail, pk, len(bits), pub.cfg.Bins*pub.nb)
		}
		publicBits := reshapeBits(bits, pub.cfg.Bins, pub.nb)
		if err := proverVerifier.CheckProverOutput(msg, publicBits, t.Outputs[pk]); err != nil {
			return fmt.Errorf("%w: %v", ErrAuditFail, err)
		}
		return nil
	})
	if err != nil {
		return err
	}

	release, err := verifier.Aggregate(t.Outputs)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrAuditFail, err)
	}
	if len(release.Raw) != len(t.Release.Raw) {
		return fmt.Errorf("%w: release has %d bins, transcript claims %d",
			ErrAuditFail, len(release.Raw), len(t.Release.Raw))
	}
	for j := range release.Raw {
		if release.Raw[j] != t.Release.Raw[j] {
			return fmt.Errorf("%w: recomputed bin %d = %d, transcript claims %d",
				ErrAuditFail, j, release.Raw[j], t.Release.Raw[j])
		}
	}
	return nil
}
