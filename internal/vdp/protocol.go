package vdp

import (
	"fmt"
	"io"

	"repro/internal/morra"
)

// MorraRecord is the public transcript of one O_morra realisation: the
// 2-party Πmorra run between a prover and the verifier that produced the
// prover's public coins. Recording the commit and reveal messages lets any
// auditor recompute the coins and verify nobody equivocated.
type MorraRecord struct {
	Prover  int
	Commits []*morra.CommitMsg
	Reveals []*morra.RevealMsg
}

// Transcript is the complete public record of a ΠBin execution — exactly
// the bulletin-board contents. Audit re-derives every verifier verdict from
// it, so a release is trustworthy iff its transcript audits cleanly.
type Transcript struct {
	Clients  []*ClientPublic
	CoinMsgs []*CoinCommitMsg // one per prover, indexed by position
	Morra    []*MorraRecord   // one per prover
	Outputs  []*ProverOutput  // one per prover
	Release  *Release
}

// RunOptions configures a local protocol execution.
type RunOptions struct {
	// Malice assigns deviations to prover indices; absent provers are
	// honest.
	Malice map[int]Malice
	// Rand is the randomness source (nil = crypto/rand).
	Rand io.Reader
}

// RunResult is the outcome of a successful protocol execution.
type RunResult struct {
	Release         *Release
	Transcript      *Transcript
	RejectedClients map[int]error
}

// Run executes a full ΠBin instance locally: clients with the given
// choices, K provers, and the public verifier, with Morra realising the
// public-coin oracle. It returns an ErrProverCheat-wrapped error the moment
// the verifier detects a misbehaving prover (which is the point: malice
// must never produce a silent wrong answer). Rejected clients do not abort
// the run; they are excluded from the public roster and reported.
func Run(pub *Public, choices []int, opts *RunOptions) (*RunResult, error) {
	if opts == nil {
		opts = &RunOptions{}
	}
	rnd := opts.Rand

	// Clients prepare submissions.
	publics := make([]*ClientPublic, 0, len(choices))
	payloads := make(map[int][]*ClientPayload, len(choices)) // by client ID
	for i, choice := range choices {
		sub, err := pub.NewClientSubmission(i, choice, rnd)
		if err != nil {
			return nil, fmt.Errorf("client %d: %w", i, err)
		}
		publics = append(publics, sub.Public)
		payloads[i] = sub.Payloads
	}
	return RunWithSubmissions(pub, publics, payloads, opts)
}

// RunWithSubmissions executes the protocol over pre-built client material,
// allowing tests to inject malformed or adversarial client submissions.
// payloads maps client ID to its K per-prover payloads.
func RunWithSubmissions(pub *Public, publics []*ClientPublic, payloads map[int][]*ClientPayload, opts *RunOptions) (*RunResult, error) {
	if opts == nil {
		opts = &RunOptions{}
	}
	rnd := opts.Rand
	k := pub.cfg.Provers
	m := pub.cfg.Bins
	nb := pub.nb

	// Line 3: the public verifier fixes the valid-client roster.
	verifier := NewVerifier(pub)
	_, rejected := verifier.VerifyClients(publics)

	// Provers ingest the valid clients' payloads.
	provers := make([]*Prover, k)
	for pk := 0; pk < k; pk++ {
		malice := NoMalice
		if opts.Malice != nil {
			if mm, ok := opts.Malice[pk]; ok {
				malice = mm
			}
		}
		pr, err := NewMaliciousProver(pub, pk, malice)
		if err != nil {
			return nil, err
		}
		provers[pk] = pr
		for _, cl := range verifier.ValidClients() {
			pls, ok := payloads[cl.ID]
			if !ok || len(pls) != k {
				return nil, fmt.Errorf("%w: client %d on the roster has no payload for prover %d",
					ErrClientReject, cl.ID, pk)
			}
			if err := pr.AcceptClient(cl, pls[pk]); err != nil {
				return nil, err
			}
		}
	}

	tr := &Transcript{Clients: publics}

	// Lines 4-6: coin commitments and Σ-OR verification.
	coinMsgs := make([]*CoinCommitMsg, k)
	for pk := 0; pk < k; pk++ {
		msg, err := provers[pk].CommitCoins(rnd)
		if err != nil {
			return nil, err
		}
		coinMsgs[pk] = msg
		if err := verifier.VerifyCoinCommitments(msg); err != nil {
			return nil, err
		}
	}
	tr.CoinMsgs = coinMsgs

	// Lines 7-8: per-prover Morra with the verifier for M·nb public bits.
	publicBits := make([][][]byte, k)
	for pk := 0; pk < k; pk++ {
		bits, record, err := runMorra(pub, pk, m*nb, rnd)
		if err != nil {
			return nil, err
		}
		tr.Morra = append(tr.Morra, record)
		publicBits[pk] = reshapeBits(bits, m, nb)
		if err := provers[pk].SetPublicCoins(publicBits[pk]); err != nil {
			return nil, err
		}
	}

	// Lines 9-13: outputs and the final commitment-product check.
	outputs := make([]*ProverOutput, k)
	for pk := 0; pk < k; pk++ {
		out, err := provers[pk].Finalize()
		if err != nil {
			return nil, err
		}
		outputs[pk] = out
		if err := verifier.CheckProverOutput(coinMsgs[pk], publicBits[pk], out); err != nil {
			return nil, err
		}
	}
	tr.Outputs = outputs

	release, err := verifier.Aggregate(outputs)
	if err != nil {
		return nil, err
	}
	tr.Release = release
	return &RunResult{Release: release, Transcript: tr, RejectedClients: rejected}, nil
}

// runMorra executes the 2-party Πmorra between prover pk and the verifier,
// returning the flat bit string and the public record.
func runMorra(pub *Public, pk, batch int, rnd io.Reader) ([]byte, *MorraRecord, error) {
	parties := make([]*morra.Party, 2)
	commits := make([]*morra.CommitMsg, 2)
	for i := range parties {
		p, err := morra.NewParty(pub.pp, i, 2, batch)
		if err != nil {
			return nil, nil, err
		}
		parties[i] = p
		cm, err := p.Commit(rnd)
		if err != nil {
			return nil, nil, err
		}
		commits[i] = cm
	}
	reveals := make([]*morra.RevealMsg, 2)
	for i := 1; i >= 0; i-- { // reverse reveal order per Algorithm 1
		rv, err := parties[i].Reveal()
		if err != nil {
			return nil, nil, err
		}
		reveals[i] = rv
	}
	xs, err := morra.Combine(pub.pp, commits, reveals)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: morra with prover %d: %v", ErrProverCheat, pk, err)
	}
	return morra.Bits(xs), &MorraRecord{Prover: pk, Commits: commits, Reveals: reveals}, nil
}

// reshapeBits splits a flat bit string into [bins][nb].
func reshapeBits(bits []byte, bins, nb int) [][]byte {
	out := make([][]byte, bins)
	for j := 0; j < bins; j++ {
		out[j] = bits[j*nb : (j+1)*nb]
	}
	return out
}

// Audit replays every public verification step from a transcript: client
// legality, coin-commitment Σ-OR proofs, Morra opening checks and coin
// recomputation, the Line 13 product check for every prover, and the final
// aggregation. It returns nil iff an independent auditor would accept the
// release. This function is the "Auditable" column of Table 2 made
// executable.
func Audit(pub *Public, t *Transcript) error {
	if t == nil || t.Release == nil {
		return fmt.Errorf("%w: empty transcript", ErrAuditFail)
	}
	k := pub.cfg.Provers
	if len(t.CoinMsgs) != k || len(t.Morra) != k || len(t.Outputs) != k {
		return fmt.Errorf("%w: transcript covers %d/%d/%d prover records, want %d",
			ErrAuditFail, len(t.CoinMsgs), len(t.Morra), len(t.Outputs), k)
	}

	verifier := NewVerifier(pub)
	verifier.VerifyClients(t.Clients)

	for pk := 0; pk < k; pk++ {
		msg := t.CoinMsgs[pk]
		if msg.Prover != pk {
			return fmt.Errorf("%w: coin message %d claims prover %d", ErrAuditFail, pk, msg.Prover)
		}
		if err := verifier.VerifyCoinCommitments(msg); err != nil {
			return fmt.Errorf("%w: %v", ErrAuditFail, err)
		}
		rec := t.Morra[pk]
		xs, err := morra.Combine(pub.pp, rec.Commits, rec.Reveals)
		if err != nil {
			return fmt.Errorf("%w: morra record for prover %d: %v", ErrAuditFail, pk, err)
		}
		bits := morra.Bits(xs)
		if len(bits) != pub.cfg.Bins*pub.nb {
			return fmt.Errorf("%w: morra record for prover %d has %d coins, want %d",
				ErrAuditFail, pk, len(bits), pub.cfg.Bins*pub.nb)
		}
		publicBits := reshapeBits(bits, pub.cfg.Bins, pub.nb)
		if err := verifier.CheckProverOutput(msg, publicBits, t.Outputs[pk]); err != nil {
			return fmt.Errorf("%w: %v", ErrAuditFail, err)
		}
	}

	release, err := verifier.Aggregate(t.Outputs)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrAuditFail, err)
	}
	if len(release.Raw) != len(t.Release.Raw) {
		return fmt.Errorf("%w: release has %d bins, transcript claims %d",
			ErrAuditFail, len(release.Raw), len(t.Release.Raw))
	}
	for j := range release.Raw {
		if release.Raw[j] != t.Release.Raw[j] {
			return fmt.Errorf("%w: recomputed bin %d = %d, transcript claims %d",
				ErrAuditFail, j, release.Raw[j], t.Release.Raw[j])
		}
	}
	return nil
}
