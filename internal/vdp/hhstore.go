package vdp

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/sketch"
	"repro/internal/store"
)

// Durable sketch sessions: recovery, offline audit, and live tailing over a
// store.SegmentedLog with one segment per count-min row. The segment
// machinery is the sharded session's — same merged-seal manifest grammar,
// same per-segment record streams — but the roster discipline differs: a
// sharded deployment pins each client to exactly one shard (ShardOf),
// while a sketch puts every client on every row. The audit therefore swaps
// the shard-assignment check for the row-subset invariant (row 0 gates
// admission, so no row may seat a client row 0 does not), and the live tail
// runs its per-segment auditors unpinned. Budget charges appear on row 0's
// segment only; the other rows' ledgers stay empty by construction.

// ResumeSketchSession reconstructs a sketch session from its segmented
// board log after a restart. Every row's segment is replayed and resumed
// exactly as ResumeSession would — including the row-0 budget ledger, whose
// chain is re-verified and whose interrupted charges and refusals are
// converged — and the rows are then reconciled: laggards from an
// interrupted Reset are rolled forward, a fully-sealed epoch missing its
// merged-seal manifest record is healed, and a manifest record disagreeing
// with the recomputed digest refuses to resume. opts.Rand must carry the
// original root seed, exactly as with ResumeShardedSession.
func ResumeSketchSession(ctx context.Context, pub *Public, layout sketch.Layout, opts SessionOptions) (*SketchSession, error) {
	if err := validateSketchOptions(pub, layout, opts); err != nil {
		return nil, err
	}
	seg := opts.Segmented
	if seg == nil {
		return nil, fmt.Errorf("%w: ResumeSketchSession needs SessionOptions.Segmented", ErrBadConfig)
	}
	root, err := newRandSource(opts.Rand)
	if err != nil {
		return nil, err
	}
	hs := &SketchSession{pub: pub, layout: layout, opts: opts, resumed: true}
	per := perShardWorkers(opts.Parallelism, layout.Rows)
	maxEpoch := 0
	for r := 0; r < layout.Rows; r++ {
		so := subSessionOptions(opts, per)
		if r > 0 {
			so.Budget = nil
		}
		so.Store = seg.Board(r)
		s, err := resumeSessionFromSource(ctx, pub, so, root.forkShard(r, layout.Rows))
		if err != nil {
			return nil, fmt.Errorf("vdp: resuming sketch row %d: %w", r, err)
		}
		hs.rows = append(hs.rows, s)
		if s.Epoch() > maxEpoch {
			maxEpoch = s.Epoch()
		}
	}
	for r, s := range hs.rows {
		for s.Epoch() < maxEpoch {
			if err := s.Reset(); err != nil {
				return nil, fmt.Errorf("vdp: rolling sketch row %d forward to epoch %d: %w", r, maxEpoch, err)
			}
		}
	}
	hs.epoch = maxEpoch

	seals, err := readMergedSeals(seg)
	if err != nil {
		return nil, err
	}
	for epoch := range seals {
		if epoch > maxEpoch {
			return nil, fmt.Errorf("vdp: manifest seals epoch %d but the rows have only reached epoch %d", epoch, maxEpoch)
		}
	}
	allSealed := true
	for _, s := range hs.rows {
		if !s.Finalized() {
			allSealed = false
			break
		}
	}
	if allSealed {
		ts := make([]*Transcript, layout.Rows)
		for r, s := range hs.rows {
			if ts[r] = s.SealedTranscript(); ts[r] == nil {
				return nil, fmt.Errorf("%w: sketch row %d is sealed but its transcript is not recoverable", ErrBadConfig, r)
			}
		}
		digest := MergedTranscriptDigest(pub, ts)
		if want, ok := seals[maxEpoch]; ok {
			if !bytes.Equal(want, digest) {
				return nil, fmt.Errorf("vdp: manifest merged seal for epoch %d disagrees with the row seals", maxEpoch)
			}
		} else if err := appendMergedSeal(seg, maxEpoch, layout.Rows, digest); err != nil {
			return nil, err
		}
		hs.state = sessionFinalized
	} else if _, ok := seals[maxEpoch]; ok {
		return nil, fmt.Errorf("vdp: manifest seals epoch %d but not every row segment is sealed", maxEpoch)
	}
	return hs, nil
}

// AuditSketchLog audits a sketch epoch offline, from the segmented board
// log alone: each row's segment is audited exactly as AuditLog audits a
// single board log (sealed transcript re-verified, arrival records
// cross-checked, budget-charge chain replayed), the row rosters must obey
// the admission gate (every client row r > 0 seats also sits on row 0 —
// row 0 admits first, so a foreign client on a later row is a forged
// roster), and the merged digest recomputed from the row seals must equal
// the manifest's merged-seal record. epoch < 0 selects the latest merged
// epoch; workers follows the AuditParallel convention.
func AuditSketchLog(ctx context.Context, pub *Public, layout sketch.Layout, seg *store.SegmentedLog, epoch, workers int) error {
	if err := layout.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if pub.Bins() != layout.Width {
		return fmt.Errorf("%w: layout width %d but the protocol has %d bins", ErrBadConfig, layout.Width, pub.Bins())
	}
	if seg.Shards() != layout.Rows {
		return fmt.Errorf("%w: segmented log holds %d segments but the layout has %d rows", ErrBadConfig, seg.Shards(), layout.Rows)
	}
	seals, err := readMergedSeals(seg)
	if err != nil {
		return err
	}
	if epoch < 0 {
		epoch = -1
		for e := range seals {
			if e > epoch {
				epoch = e
			}
		}
		if epoch < 0 {
			return fmt.Errorf("%w: manifest holds no merged-sealed epoch", ErrAuditFail)
		}
	}
	want, ok := seals[epoch]
	if !ok {
		return fmt.Errorf("%w: manifest holds no merged seal for epoch %d", ErrAuditFail, epoch)
	}
	ts := make([]*Transcript, layout.Rows)
	for r := range ts {
		t, err := auditLogEpoch(ctx, pub, seg.Segment(r), epoch, workers)
		if err != nil {
			return fmt.Errorf("sketch row %d: %w", r, err)
		}
		ts[r] = t
	}
	row0 := make(map[int]bool, len(ts[0].Clients))
	for _, cp := range ts[0].Clients {
		row0[cp.ID] = true
	}
	for r := 1; r < len(ts); r++ {
		for _, cp := range ts[r].Clients {
			if !row0[cp.ID] {
				return fmt.Errorf("%w: sketch row %d seats client %d, which row 0 never admitted", ErrAuditFail, r, cp.ID)
			}
		}
	}
	if got := MergedTranscriptDigest(pub, ts); !bytes.Equal(got, want) {
		return fmt.Errorf("%w: epoch %d merged digest disagrees with the manifest's merged seal", ErrAuditFail, epoch)
	}
	return nil
}

// TailSketchLog opens a live audit tail over a sketch session's segmented
// board log: one TailAuditor per row (unpinned — sketch clients legally
// appear on every row) plus the manifest's merged-seal stream, drained
// together by Poll. opts.Budget applies to row 0's auditor only; the other
// rows carry no charges, and any charge record appearing there fails their
// chain replay at the unknown-client check.
func TailSketchLog(pub *Public, layout sketch.Layout, seg *store.SegmentedLog, opts TailOptions) (*SegmentedTail, error) {
	if err := layout.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if seg.Shards() != layout.Rows {
		return nil, fmt.Errorf("%w: segmented log holds %d segments but the layout has %d rows", ErrBadConfig, seg.Shards(), layout.Rows)
	}
	m := &MergedTailAuditor{pub: pub, seals: make(map[int][]byte)}
	for r := 0; r < layout.Rows; r++ {
		ro := opts
		if r > 0 {
			ro.Budget = nil
		}
		a := NewTailAuditor(pub, ro)
		t, err := seg.Segment(r).Tail()
		if err != nil {
			m.Close()
			return nil, err
		}
		a.AttachTailer(t)
		m.shards = append(m.shards, a)
	}
	manTail, err := seg.Manifest().Tail()
	if err != nil {
		m.Close()
		return nil, err
	}
	return &SegmentedTail{merged: m, manTail: manTail}, nil
}
