// Package vdp implements ΠBin, the verifiable differential privacy protocol
// for counting queries and M-bin histograms from Section 4 of the paper
// (Figure 2), in both the trusted-curator (K = 1) and client-server MPC
// (K ≥ 2) settings.
//
// # Roles
//
//   - Clients hold inputs in the language L: a bit for the single counting
//     query (M = 1) or a one-hot vector for an M-bin histogram. Each client
//     additively secret-shares its input across the K provers, broadcasts
//     Pedersen commitments to every share on the public bulletin board, and
//     attaches a zero-knowledge proof that the (derived) committed input is
//     legal (Lines 2-3 of Figure 2).
//
//   - Provers (the curator when K = 1) aggregate the shares they received,
//     generate nb private noise bits each, commit to them, prove in zero
//     knowledge that each commitment opens to a bit (Σ-OR proofs, Lines
//     4-6), XOR them against public Morra coins (Lines 7-9), and publish
//     their noisy share total together with the aggregate commitment
//     randomness (Lines 10-11).
//
//   - The public Verifier validates every proof, homomorphically flips the
//     noise-bit commitments using the public coins (Line 12), and checks
//     that the product of all client-share and adjusted noise commitments
//     equals a commitment to the claimed output (Line 13). Anyone can
//     re-run the verifier from the public transcript (package-level Audit),
//     which is what makes the release *publicly* auditable.
//
// The output of an honest run is y = Σ_k y_k = Q(X) + Σ_k Binomial(nb, ½):
// the counting query plus K independent copies of Binomial noise, exactly
// the ideal functionality M_Bin (equation (7)). Every deviation a
// computationally bounded prover can attempt — non-bit noise commitments,
// biased public coins, tampered aggregates, dropped or injected client
// inputs — is either prevented or detected and attributed (Theorem 4.1).
//
// # Execution surfaces
//
// The protocol runs on a staged worker-pool pipeline (Engine) whose
// randomness is derived per logical task, never per schedule, so a fixed
// seed yields a byte-identical transcript at every parallelism
// (TranscriptDigest states the property; rand.go implements it). Three
// entry points drive the pipeline:
//
//   - Run / RunWithSubmissions / Audit: batch execution over a complete
//     board, with one random-linear-combination Σ-OR check deciding client
//     legality for the whole board at once.
//
//   - Session: the streaming surface. Submit admits clients one at a time
//     (verified eagerly on the pool, verdict returned to the caller),
//     Finalize closes the epoch over the already-verified roster, Reset
//     reopens the session for the next epoch.
//
//   - ResumeSession: crash recovery. A Session given SessionOptions.Store
//     appends every submission, verdict, epoch seal and reset to an
//     append-only board log (internal/store); ResumeSession replays that
//     log to reconstruct the interrupted epoch — same roster, same board
//     order, and therefore (under the same seed) the same
//     TranscriptDigest. AuditLog re-verifies a sealed epoch offline from
//     the log alone.
//
//   - ShardedSession: the scale-out front door. Client IDs are
//     consistent-hashed (ShardOf) across independent sub-sessions — one
//     roster lock, engine slice, substream fork and board-log segment each
//     (store.SegmentedLog) — so Submits on different shards never contend;
//     Finalize closes the shards in parallel and merges their transcripts
//     into one epoch pinned by MergedTranscriptDigest.
//     ResumeShardedSession and AuditSegmentedLog are the sharded
//     counterparts of ResumeSession and AuditLog.
//
// Wire encodings for every message that crosses a process boundary — or
// lands in the board log — live in wire.go and wirelog.go. All encodings
// lead with a format-version byte (WireVersion) and validate every
// component on decode, so hostile bytes fail to parse instead of
// corrupting a verifier or a recovered session; the decoders are fuzzed in
// CI.
package vdp
