package vdp

import (
	"context"
	"fmt"
)

// Batched admission: the high-throughput front door.
//
// The transport's original contract was one submission per framed
// round-trip, and Session.Submit verifies each arrival as its own engine
// task — so the 30× advantage of RLC batch verification (sigma.BitBatch +
// group.NativeMultiExp, PR 5) never reached the server's front door. This
// file carries batches through every admission stage instead:
//
//   - EncodeSubmissionBatch / DecodeSubmissionBatch: a versioned wire body
//     holding N full client submissions, the payload of one "submit-batch"
//     transport frame. The one-per-frame "submit" kind is untouched; old
//     clients interoperate unchanged.
//   - Session.SubmitBatch: admits the whole batch under ONE roster-lock
//     acquisition, persists it inside ONE group-commit fsync window, and
//     verifies every board proof with ONE combined Σ-OR batch check — with
//     the fsync and the multi-exponentiation running concurrently. Verdicts
//     stay per-client and byte-identical to Submit's, so board-reject
//     semantics, log grammar, and transcript digests are all preserved.
//   - ShardedSession.SubmitBatch: splits a batch by ShardOf and runs the
//     per-shard sub-batches concurrently.
//   - BatchVerdict (+ codecs): the per-client outcomes the server sends back
//     in the reply frame.

// MaxBatchClients bounds the number of submissions one batch frame may
// claim, so a hostile count prefix cannot force an unbounded allocation and
// one peer cannot monopolise an admission window. Senders with more clients
// split across frames.
const MaxBatchClients = 4096

// EncodeSubmissionBatch serializes a batch of full client submissions as
// one wire body: version | u32 count | count × lpBytes(submission record).
// Each inner record is exactly EncodeClientSubmission's encoding.
func (p *Public) EncodeSubmissionBatch(subs []*ClientSubmission) []byte {
	return p.AppendSubmissionBatch(nil, subs)
}

// AppendSubmissionBatch is EncodeSubmissionBatch writing into dst (grown as
// needed), so a flooding sender reuses one buffer across frames instead of
// allocating a fresh multi-megabyte encoding per batch.
func (p *Public) AppendSubmissionBatch(dst []byte, subs []*ClientSubmission) []byte {
	w := wireWriter{b: dst[:0]}
	w.version()
	w.u32(uint32(len(subs)))
	for _, sub := range subs {
		mark := w.lpMark()
		p.encodeClientSubmissionInto(&w, sub)
		w.lpPatch(mark)
	}
	return w.b
}

// DecodeSubmissionBatch parses and validates a batch frame body. Every
// inner submission is fully validated (group membership, canonical scalars)
// exactly as the single-submission decoder would; one malformed member
// fails the whole decode — the sender is speaking the protocol wrong, which
// is different from a well-formed member whose *proof* is wrong (that one
// decodes fine and earns its rejection verdict from SubmitBatch).
func (p *Public) DecodeSubmissionBatch(b []byte) ([]*ClientSubmission, error) {
	r := wireReader{b: b}
	r.version()
	n := r.u32()
	if r.err == nil && n > MaxBatchClients {
		return nil, fmt.Errorf("vdp: batch claims %d submissions (limit %d)", n, MaxBatchClients)
	}
	subs := make([]*ClientSubmission, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		raw := r.lpBytes()
		if r.err != nil {
			break
		}
		sub, err := p.DecodeClientSubmission(raw)
		if err != nil {
			return nil, fmt.Errorf("vdp: batch submission %d: %w", i, err)
		}
		subs = append(subs, sub)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return subs, nil
}

// BatchVerdict is one client's outcome in the reply to a batch frame.
type BatchVerdict struct {
	ID       int
	Accepted bool
	Reason   string // rejection reason; empty when accepted
}

// VerdictsFor pairs SubmitBatch's per-slot errors back with the submissions
// they belong to, producing the reply-frame form. A nil submission slot
// reports ID -1.
func VerdictsFor(subs []*ClientSubmission, errs []error) []BatchVerdict {
	out := make([]BatchVerdict, len(subs))
	for i := range subs {
		out[i].ID = -1
		if subs[i] != nil && subs[i].Public != nil {
			out[i].ID = subs[i].Public.ID
		}
		if i < len(errs) && errs[i] != nil {
			out[i].Reason = errs[i].Error()
		} else {
			out[i].Accepted = true
		}
	}
	return out
}

// EncodeBatchVerdicts serializes per-client verdicts for the reply frame:
// version | u32 count | count × (u32 id | u8 accepted | lpBytes reason).
func EncodeBatchVerdicts(vs []BatchVerdict) []byte {
	var w wireWriter
	w.version()
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.u32(uint32(v.ID))
		acc := byte(0)
		if v.Accepted {
			acc = 1
		}
		w.bytes([]byte{acc})
		w.lpBytes([]byte(v.Reason))
	}
	return w.b
}

// DecodeBatchVerdicts parses a verdict reply body.
func DecodeBatchVerdicts(b []byte) ([]BatchVerdict, error) {
	r := wireReader{b: b}
	r.version()
	n := r.u32()
	if r.err == nil && n > MaxBatchClients {
		return nil, fmt.Errorf("vdp: verdict reply claims %d entries (limit %d)", n, MaxBatchClients)
	}
	out := make([]BatchVerdict, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		id := int(int32(r.u32()))
		flag := r.take(1)
		reason := r.lpBytes()
		if r.err != nil {
			break
		}
		out = append(out, BatchVerdict{ID: id, Accepted: flag[0] == 1, Reason: string(reason)})
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitBatch admits a whole arrival batch into the current epoch:
// duplicate screening and board-order reservation for every member happen
// under one roster-lock acquisition, all submission records land inside one
// group-commit fsync window, and every member's board proof folds into a
// single combined Σ-OR batch check (one native multi-exponentiation) that
// runs concurrently with the fsync. The returned slice holds one verdict
// per submission, aligned with subs, with exactly Submit's per-client
// semantics: nil admits the client, an ErrClientReject-wrapped error
// records the rejection (board-level failures stay on the bulletin board;
// payload disputes are refused outright and never posted), and duplicates —
// against the roster or earlier in the same batch — fail without being
// recorded. Interleaving SubmitBatch with concurrent Submits is safe and
// verdict-equivalent to any serial order of the same arrivals.
//
// A non-nil error reports a batch-level failure. When verdicts is nil the
// batch was not admitted at all (closed session, cancelled ctx, or a store
// failure before any verdict was computed; every reservation was
// withdrawn). When verdicts is non-nil alongside the error, the board
// reflects the verdicts but the store is failing: members whose verdict
// record could not be written in order were withdrawn again (their slots
// carry the error), and the epoch cannot seal until the store recovers.
func (s *Session) SubmitBatch(ctx context.Context, subs []*ClientSubmission) ([]error, error) {
	if len(subs) == 0 {
		return nil, nil
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	s.flight.RLock()
	defer s.flight.RUnlock()

	// Encode every durable submission record outside the roster lock, into
	// pooled buffers: both BoardLog implementations copy the payload inside
	// Append, so the scratch recycles once the ordered writes are in.
	var recs [][]byte
	var bufs []*[]byte
	if s.opts.Store != nil {
		recs = make([][]byte, len(subs))
		for i, sub := range subs {
			if sub == nil || sub.Public == nil {
				continue
			}
			buf := getWireBuf()
			w := wireWriter{b: (*buf)[:0]}
			s.pub.encodeClientSubmissionInto(&w, sub)
			*buf = w.b
			recs[i] = w.b
			bufs = append(bufs, buf)
		}
		defer func() {
			for _, b := range bufs {
				putWireBuf(b)
			}
		}()
	}

	// One roster-lock acquisition reserves the whole batch: duplicate
	// screening, board-order append, and the ordered (not-yet-synced) log
	// writes — so log order equals board order for every member, the same
	// invariant Submit maintains one client at a time.
	verdicts := make([]error, len(subs))
	admitted := make([]*sessionClient, 0, len(subs))
	admittedIdx := make([]int, 0, len(subs))
	s.mu.Lock()
	if s.state != sessionOpen {
		st := s.state
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: session is %s", ErrBadConfig, st)
	}
	epoch := s.epoch
	var aerr error
	for i, sub := range subs {
		if sub == nil || sub.Public == nil {
			verdicts[i] = fmt.Errorf("%w: nil submission", ErrClientReject)
			continue
		}
		if _, dup := s.byID[sub.Public.ID]; dup {
			verdicts[i] = fmt.Errorf("%w: duplicate submission from client %d", ErrClientReject, sub.Public.ID)
			continue
		}
		if s.ledger != nil && !s.ledger.canCharge(epoch, sub.Public.ID) {
			// Over budget: the member is refused with an attributable verdict
			// (see Session.refuseOverBudgetLocked) — submission and refusal
			// records land back to back in this batch's commit window, the ID
			// stays reserved off-board, and nothing is charged.
			id := sub.Public.ID
			refusal := budgetRefusalError(id, s.ledger.spent[id], s.ledger.cfg.EpochCost, s.ledger.cfg.Total)
			cl := &sessionClient{public: sub.Public, payloads: sub.Payloads, decided: true, reject: refusal}
			if recs != nil {
				if aerr = s.appendRecordOrdered(RecordSubmission, epoch, recs[i]); aerr != nil {
					break
				}
				if aerr = s.appendRecordOrdered(RecordVerdict, epoch, encodeVerdict(id, refusal, false)); aerr != nil {
					// The submission landed without its verdict: hand the
					// member to the generic unwind, which may withdraw it.
					cl.decided, cl.reject = false, nil
					s.byID[id] = cl
					admitted = append(admitted, cl)
					break
				}
			}
			s.byID[id] = cl
			s.rejected[id] = refusal
			verdicts[i] = refusal
			continue
		}
		if recs != nil {
			if aerr = s.appendRecordOrdered(RecordSubmission, epoch, recs[i]); aerr != nil {
				break
			}
		}
		cl := &sessionClient{public: sub.Public, payloads: sub.Payloads}
		s.byID[sub.Public.ID] = cl
		s.order = append(s.order, cl)
		admitted = append(admitted, cl)
		admittedIdx = append(admittedIdx, i)
		if s.ledger != nil {
			// Charge the member right behind its submission record, in the
			// same commit window (see Submit). A failed append leaves the
			// member in the generic unwind set below.
			if payload, commit := s.ledger.prepareCharge(epoch, sub.Public.ID); payload != nil {
				if aerr = s.appendRecordOrdered(RecordBudgetCharge, epoch, payload); aerr != nil {
					break
				}
				commit()
			}
		}
	}
	if aerr != nil {
		// The store failed mid-batch: members already written are reserved
		// but cannot be acknowledged. Withdraw them — grammatical, since
		// none has a verdict yet — and fail the whole batch.
		s.withdrawBatchLocked(admitted, epoch)
		s.mu.Unlock()
		return nil, aerr
	}
	s.mu.Unlock()

	// Group commit ∥ verification: one fsync covers every submission record
	// just written, and it runs while the batched Σ-OR check is already
	// chewing on the same submissions — the disk and the
	// multi-exponentiation overlap instead of queueing behind each other.
	// Nothing is acknowledged until both have landed.
	syncc := make(chan error, 1)
	if s.opts.Store != nil {
		go func() { syncc <- s.syncStore() }()
	} else {
		syncc <- nil
	}
	var bv []error
	var onBoard []bool
	var verr error
	if !s.opts.DeferVerification && len(admitted) > 0 {
		batchSubs := make([]*ClientSubmission, len(admitted))
		for k, i := range admittedIdx {
			batchSubs[k] = subs[i]
		}
		bv, onBoard, verr = s.verifyBatch(ctx, batchSubs)
	}
	if serr := <-syncc; serr != nil {
		s.mu.Lock()
		s.withdrawBatchLocked(admitted, epoch)
		s.mu.Unlock()
		return nil, serr
	}
	if verr != nil {
		// Cancelled mid-verification: release every reservation so a retry
		// of the same batch is not a duplicate flood.
		s.mu.Lock()
		s.withdrawBatchLocked(admitted, epoch)
		s.mu.Unlock()
		return nil, verr
	}
	if s.opts.DeferVerification || len(admitted) == 0 {
		return verdicts, nil
	}

	s.mu.Lock()
	for k, cl := range admitted {
		cl.decided = true
		cl.reject = bv[k]
		verdicts[admittedIdx[k]] = bv[k]
		if bv[k] != nil {
			s.rejected[cl.public.ID] = bv[k]
			if !onBoard[k] {
				// Private-channel payload failure: refused outright, the
				// public part never reaches the bulletin board (see Submit).
				s.removeFromOrderLocked(cl)
			}
		}
	}
	s.mu.Unlock()

	// Verdict records: ordered writes plus one shared flush, like the
	// submission window. Verdicts are recomputable — replay re-verifies a
	// verdict-less submission to the identical verdict — so a failed flush
	// is reported but needs no rollback; only members whose verdict record
	// never hit the log at all are withdrawn (their submission records stay,
	// verdict-less, exactly the state recovery handles).
	if s.opts.Store != nil {
		flushed := len(admitted)
		for k, cl := range admitted {
			if aerr = s.appendRecordOrdered(RecordVerdict, epoch, encodeVerdict(cl.public.ID, bv[k], onBoard[k])); aerr != nil {
				flushed = k
				break
			}
		}
		if aerr == nil {
			aerr = s.syncStore()
		}
		if aerr != nil {
			if flushed < len(admitted) {
				s.mu.Lock()
				s.withdrawBatchLocked(admitted[flushed:], epoch)
				s.mu.Unlock()
				for _, i := range admittedIdx[flushed:] {
					verdicts[i] = aerr
				}
			}
			return verdicts, aerr
		}
	}
	return verdicts, nil
}

// withdrawBatchLocked removes a batch's reserved members after a failure,
// releasing their IDs for a retry, and appends best-effort withdrawal
// records (the store is typically already failing; replay treats an
// unwithdrawn, verdict-less submission as "re-verify", so a lost withdrawal
// is superseded on the next retry — same contract as Session.withdraw).
// Callers hold s.mu and must only pass members without a persisted verdict.
func (s *Session) withdrawBatchLocked(admitted []*sessionClient, epoch int) {
	for _, cl := range admitted {
		delete(s.byID, cl.public.ID)
		delete(s.rejected, cl.public.ID)
		s.removeFromOrderLocked(cl)
		_ = s.appendRecord(RecordWithdraw, epoch, encodeWithdraw(cl.public.ID))
	}
}

// verifyBatch decides a whole batch eagerly: ONE combined Σ-OR batch check
// over every member's board proof (sigma.BitBatch folding the entire
// arrival batch, decided by a single multi-exponentiation on the native
// Pippenger backend) and the members' K·N per-prover share-opening checks
// fanned out over the engine pool. Verdicts — sentinels, reasons, and the
// onBoard split — are exactly what Submit's per-arrival verify would
// produce for each member individually; only the wall-clock cost changes.
// A non-nil err means cancellation, not a verdict.
func (s *Session) verifyBatch(ctx context.Context, subs []*ClientSubmission) (verdicts []error, onBoard []bool, err error) {
	n := len(subs)
	verdicts = make([]error, n)
	onBoard = make([]bool, n)
	publics := make([]*ClientPublic, n)
	for i, sub := range subs {
		publics[i] = sub.Public
	}
	_, rej, ferr := s.pub.filterValidClientsBatch(ctx, publics, s.eng.workers)
	if ferr != nil {
		return nil, nil, ferr
	}
	k := s.pub.cfg.Provers
	// Members that survived the board check and carry the right payload
	// count proceed to the fanned-out opening checks.
	pending := make([]int, 0, n)
	for i, sub := range subs {
		if r, ok := rej[sub.Public.ID]; ok {
			verdicts[i] = r
			onBoard[i] = true
			continue
		}
		if len(sub.Payloads) != k {
			verdicts[i] = fmt.Errorf("%w: client %d supplied %d per-prover payloads, want %d",
				ErrClientReject, sub.Public.ID, len(sub.Payloads), k)
			continue
		}
		pending = append(pending, i)
	}
	rejects := make([]error, len(pending)*k)
	ferr = forEach(ctx, s.eng.workers, len(pending)*k, func(t int) error {
		i := pending[t/k]
		rejects[t] = s.pub.checkPayloadOpenings(subs[i].Public, subs[i].Payloads[t%k], t%k)
		return nil
	})
	if ferr != nil {
		return nil, nil, ferr
	}
	for pi, i := range pending {
		onBoard[i] = true
		for pk := 0; pk < k; pk++ { // lowest prover index names the reason
			if r := rejects[pi*k+pk]; r != nil {
				verdicts[i] = r
				onBoard[i] = false
				break
			}
		}
	}
	return verdicts, onBoard, nil
}

// SubmitBatch splits a batch by shard assignment and admits the per-shard
// sub-batches concurrently, each with Session.SubmitBatch's exact
// semantics: one roster-lock pass, one group-commit fsync window, and one
// combined Σ-OR check per shard. Verdicts come back aligned with subs. A
// shard-level failure is reported through the error return, with the failed
// shard's slots carrying the error; sibling shards still complete their own
// sub-batches (a batch is not transactional across shards, exactly as N
// independent Submits are not).
func (ss *ShardedSession) SubmitBatch(ctx context.Context, subs []*ClientSubmission) ([]error, error) {
	if len(subs) == 0 {
		return nil, nil
	}
	verdicts := make([]error, len(subs))
	groups := make([][]*ClientSubmission, len(ss.shards))
	idx := make([][]int, len(ss.shards))
	for i, sub := range subs {
		if sub == nil || sub.Public == nil {
			verdicts[i] = fmt.Errorf("%w: nil submission", ErrClientReject)
			continue
		}
		sh := ss.ShardFor(sub.Public.ID)
		groups[sh] = append(groups[sh], sub)
		idx[sh] = append(idx[sh], i)
	}
	shardErrs := make([]error, len(ss.shards))
	done := make([]bool, len(ss.shards))
	_ = forEach(ctx, len(ss.shards), len(ss.shards), func(sh int) error {
		if len(groups[sh]) == 0 {
			done[sh] = true
			return nil
		}
		vs, err := ss.shards[sh].SubmitBatch(ctx, groups[sh])
		shardErrs[sh] = err
		for k, i := range idx[sh] {
			if vs != nil {
				verdicts[i] = vs[k]
			} else {
				verdicts[i] = err
			}
		}
		done[sh] = true
		return nil // never fail fast: sibling shards finish their sub-batches
	})
	var firstErr error
	for sh, err := range shardErrs {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if !done[sh] && len(groups[sh]) > 0 {
			// Skipped by cancellation before its sub-batch started.
			for _, i := range idx[sh] {
				verdicts[i] = ctxErr(ctx)
			}
			if firstErr == nil {
				firstErr = ctxErr(ctx)
			}
		}
	}
	return verdicts, firstErr
}
