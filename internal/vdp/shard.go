package vdp

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
)

// Sharded streaming aggregation: one logical session spread over K
// independent sub-sessions so that Submits routed to different shards never
// contend on a shared roster lock or board log.
//
// The front door (ShardedSession) consistent-hashes every client ID to one
// shard with ShardOf and routes the whole Submit there; each shard is a
// complete Session with its own engine worker slice, its own deterministic
// substream fork of the root seed, and — when durable — its own board-log
// segment. Finalize fans the per-shard finalizations out in parallel and
// merges the K sealed transcripts, in shard order, into one combined epoch
// release whose integrity is pinned by MergedTranscriptDigest. With
// Shards = 1 the whole construction collapses to a plain Session: same
// substreams, same board order, byte-identical transcript digest.

// ShardOf returns the shard that owns clientID in a deployment with the
// given shard count: FNV-1a over the ID's 8-byte big-endian encoding, mod
// shards. The map is a pure function of (clientID, shards), so every party —
// front door, resuming server, offline auditor, remote submission router —
// derives the same assignment independently.
func ShardOf(clientID, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(int64(clientID)))
	h.Write(b[:])
	return int(h.Sum64() % uint64(shards))
}

// ShardedSession is the scale-out front door over K independent Sessions.
// Submit routes each client to its ShardOf shard without taking any shared
// lock, so submissions on different shards proceed fully concurrently;
// Finalize closes every shard in parallel and merges the results. The
// zero-contention property is the point: a single Session serializes all
// admissions through one roster lock and one board log, which is the
// bottleneck this type removes.
type ShardedSession struct {
	pub    *Public
	opts   SessionOptions
	root   *randSource
	shards []*Session

	mu      sync.Mutex
	state   sessionState
	epoch   int
	resumed bool
}

// NewShardedSession opens a sharded session over pub. opts.Shards fixes the
// shard count (0 and 1 both mean one shard); opts.Parallelism is the total
// engine width, divided evenly across the shards (each shard gets at least
// one worker). A durable sharded session sets opts.Segmented — one board-log
// segment per shard plus a manifest — instead of opts.Store, and every
// segment must be empty: a segmented log with history belongs to an earlier
// incarnation and must be recovered with ResumeShardedSession. opts.Rand is
// read once for the root seed; each shard derives an independent child seed
// from it, and with Shards = 1 the shard inherits the root itself, so the
// merged transcript digest is byte-identical to a plain Session's under the
// same seed.
func NewShardedSession(pub *Public, opts SessionOptions) (*ShardedSession, error) {
	if opts.Store != nil {
		return nil, fmt.Errorf("%w: a sharded session stores its board in SessionOptions.Segmented, not Store", ErrBadConfig)
	}
	shards, err := resolveShardCount(opts)
	if err != nil {
		return nil, err
	}
	if err := opts.Budget.validate(); err != nil {
		return nil, err
	}
	if opts.Segmented != nil {
		if !opts.Segmented.Empty() {
			return nil, fmt.Errorf("%w: segmented board log already holds records; use ResumeShardedSession to recover it", ErrBadConfig)
		}
	}
	root, err := newRandSource(opts.Rand)
	if err != nil {
		return nil, err
	}
	ss := &ShardedSession{pub: pub, opts: opts, root: root}
	per := perShardWorkers(opts.Parallelism, shards)
	for i := 0; i < shards; i++ {
		so := subSessionOptions(opts, per)
		if opts.Segmented != nil {
			so.Store = opts.Segmented.Board(i)
		}
		ss.shards = append(ss.shards, newSessionFromSource(NewEngine(pub, per), so, root.forkShard(i, shards)))
	}
	return ss, nil
}

// resolveShardCount reconciles opts.Shards with the segmented store's fixed
// count: either may be left unset (0), but when both are present they must
// agree.
func resolveShardCount(opts SessionOptions) (int, error) {
	shards := opts.Shards
	if opts.Segmented != nil {
		if shards != 0 && shards != opts.Segmented.Shards() {
			return 0, fmt.Errorf("%w: SessionOptions.Shards = %d but the segmented log was created with %d shards",
				ErrBadConfig, shards, opts.Segmented.Shards())
		}
		shards = opts.Segmented.Shards()
	}
	if shards <= 0 {
		shards = 1
	}
	return shards, nil
}

// LedgerDigests returns every shard's budget-ledger chain head, in shard
// order (nil per shard when the session runs without a budget). Clients are
// pinned to shards by ShardOf, so each shard's chain is the complete charge
// history of its own clients.
func (ss *ShardedSession) LedgerDigests() [][]byte {
	out := make([][]byte, len(ss.shards))
	for i, s := range ss.shards {
		out[i] = s.LedgerDigest()
	}
	return out
}

// perShardWorkers divides the total engine width across shards, at least one
// worker each.
func perShardWorkers(parallelism, shards int) int {
	total := parallelism
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	per := total / shards
	if per < 1 {
		per = 1
	}
	return per
}

// subSessionOptions strips the shard-routing fields off the caller's options
// so each sub-session is an ordinary unsharded Session. Rand is cleared
// because the root seed was already read — shards get their substreams via
// forkShard, never by re-reading the caller's reader.
func subSessionOptions(opts SessionOptions, workers int) SessionOptions {
	opts.Shards = 0
	opts.Segmented = nil
	opts.Store = nil
	opts.Rand = nil
	opts.Parallelism = workers
	return opts
}

// Shards returns the shard count.
func (ss *ShardedSession) Shards() int { return len(ss.shards) }

// Shard returns the sub-session for shard i, for introspection (per-shard
// counters) and tests. Submitting to it directly bypasses the router only in
// the sense that the caller must pick the right shard; the duplicate and
// verification semantics are unchanged.
func (ss *ShardedSession) Shard(i int) *Session { return ss.shards[i] }

// ShardFor returns the shard that owns clientID under this session's shard
// count.
func (ss *ShardedSession) ShardFor(clientID int) int { return ShardOf(clientID, len(ss.shards)) }

// Epoch returns the current epoch number.
func (ss *ShardedSession) Epoch() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.epoch
}

// Resumed reports whether the session was reconstructed from a segmented
// board log by ResumeShardedSession.
func (ss *ShardedSession) Resumed() bool { return ss.resumed }

// Finalized reports whether the current epoch has been sealed by Finalize
// (and not yet reopened by Reset).
func (ss *ShardedSession) Finalized() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.state == sessionFinalized
}

// Submitted returns how many clients the current epoch has admitted across
// all shards.
func (ss *ShardedSession) Submitted() int {
	n := 0
	for _, s := range ss.shards {
		n += s.Submitted()
	}
	return n
}

// Accepted returns how many submissions hold a clean verdict across all
// shards.
func (ss *ShardedSession) Accepted() int {
	n := 0
	for _, s := range ss.shards {
		n += s.Accepted()
	}
	return n
}

// Rejected returns a snapshot of rejection reasons by client ID, across all
// shards. Shard assignment is injective per client, so the union is
// collision-free.
func (ss *ShardedSession) Rejected() map[int]error {
	out := make(map[int]error)
	for _, s := range ss.shards {
		for id, err := range s.Rejected() {
			out[id] = err
		}
	}
	return out
}

// NewClientSubmission builds client material for the current epoch from the
// owning shard's deterministic substream (or crypto/rand when unseeded), the
// sharded counterpart of Session.NewClientSubmission.
func (ss *ShardedSession) NewClientSubmission(clientID, choice int) (*ClientSubmission, error) {
	return ss.shards[ss.ShardFor(clientID)].NewClientSubmission(clientID, choice)
}

// Submit routes one client to its shard and admits it there, with exactly
// Session.Submit's verification, durability, and verdict semantics. The
// routing is lock-free — a pure hash of the client ID — so Submits for
// clients on different shards never serialize against each other; two
// submissions of the same ID always meet in the same shard, which is what
// keeps the duplicate guard airtight across the whole sharded board.
func (ss *ShardedSession) Submit(ctx context.Context, sub *ClientSubmission) error {
	if sub == nil || sub.Public == nil {
		return fmt.Errorf("%w: nil submission", ErrClientReject)
	}
	return ss.shards[ss.ShardFor(sub.Public.ID)].Submit(ctx, sub)
}

// ShardedResult is the outcome of finalizing a sharded epoch: the per-shard
// results in shard order, the combined release over all shards, and the
// merged digest that pins the whole epoch.
type ShardedResult struct {
	// Shards holds each shard's RunResult, indexed by shard.
	Shards []*RunResult
	// Release is the combined release: Raw[j] is the sum of every shard's
	// bin j, carrying Shards·K copies of Binomial(nb, ½) noise; Estimate
	// debiases accordingly and Stddev is sqrt(Shards·K·nb)/2.
	Release *Release
	// RejectedClients is the union of every shard's rejections.
	RejectedClients map[int]error
	// Digest is MergedTranscriptDigest over the shard transcripts.
	Digest []byte
}

// Transcripts returns the per-shard transcripts in shard (merge) order.
func (r *ShardedResult) Transcripts() []*Transcript {
	out := make([]*Transcript, len(r.Shards))
	for i, sr := range r.Shards {
		out[i] = sr.Transcript
	}
	return out
}

// Finalize closes the current epoch on every shard in parallel and merges
// the K sealed transcripts into one combined epoch result. The merge order
// is deterministic — shard index order, each shard's board in its own
// submission order — so the merged digest is reproducible by anyone holding
// the shard transcripts. A shard that was already sealed (recovered by
// ResumeShardedSession after a crash mid-finalize) contributes its sealed
// transcript as-is instead of being finalized twice. With a segmented store
// the merged digest is appended to the manifest, binding the K segment seals
// into one auditable epoch. A cancelled ctx reopens the session so Finalize
// can be retried (deterministically, to the same merged digest).
func (ss *ShardedSession) Finalize(ctx context.Context) (*ShardedResult, error) {
	ss.mu.Lock()
	if ss.state != sessionOpen {
		st := ss.state
		ss.mu.Unlock()
		return nil, fmt.Errorf("%w: session is %s", ErrBadConfig, st)
	}
	ss.state = sessionFinalizing
	epoch := ss.epoch
	ss.mu.Unlock()

	results := make([]*RunResult, len(ss.shards))
	err := forEach(ctx, len(ss.shards), len(ss.shards), func(i int) error {
		s := ss.shards[i]
		if s.Finalized() {
			// Sealed before a crash; the segment already holds the epoch's
			// transcript, so reuse it rather than double-finalizing.
			t := s.SealedTranscript()
			if t == nil {
				return fmt.Errorf("%w: shard %d is finalized but its transcript is not recoverable", ErrBadConfig, i)
			}
			results[i] = &RunResult{Release: t.Release, Transcript: t, RejectedClients: s.Rejected()}
			return nil
		}
		res, err := s.Finalize(ctx)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		// A shard that could not complete — cancelled mid-stage, or its seal
		// append failed — reopens itself (Session.Finalize's retry
		// contract), while a shard consumed by a protocol error stays
		// finalized with no transcript. Mirror that here: the epoch is
		// retryable while some shard is still open (sealed shards contribute
		// their kept transcripts, so the re-merge reproduces the identical
		// digest) — but a consumed shard can never merge, so its epoch is
		// spent no matter what state its siblings are in; retrying would
		// only bury the protocol error under lifecycle noise and, durably,
		// seal sibling segments for an epoch that cannot complete.
		retryable := errors.Is(err, ctxErr(ctx)) && ctxErr(ctx) != nil
		for _, s := range ss.shards {
			if !s.Finalized() {
				retryable = true
			}
		}
		for _, s := range ss.shards {
			if s.Finalized() && s.SealedTranscript() == nil {
				retryable = false
				break
			}
		}
		ss.mu.Lock()
		if retryable {
			ss.state = sessionOpen
		} else {
			ss.state = sessionFinalized
		}
		ss.mu.Unlock()
		return nil, err
	}

	out := &ShardedResult{Shards: results, RejectedClients: make(map[int]error)}
	for _, res := range results {
		for id, rerr := range res.RejectedClients {
			out.RejectedClients[id] = rerr
		}
	}
	release, err := mergeReleases(ss.pub, out.Transcripts())
	if err != nil {
		ss.mu.Lock()
		ss.state = sessionFinalized
		ss.mu.Unlock()
		return nil, err
	}
	out.Release = release
	out.Digest = MergedTranscriptDigest(ss.pub, out.Transcripts())

	if ss.opts.Segmented != nil {
		if err := appendMergedSeal(ss.opts.Segmented, epoch, len(ss.shards), out.Digest); err != nil {
			// The shards sealed durably but the epoch-binding manifest record
			// did not land. Reopen so Finalize can be retried in-process once
			// the store recovers: every shard is sealed with its transcript
			// kept, so the retry re-merges to the identical digest and only
			// re-attempts this append. (Reset and ResumeShardedSession heal
			// the same gap, so choosing either over a retry cannot orphan
			// the epoch.)
			ss.mu.Lock()
			ss.state = sessionOpen
			ss.mu.Unlock()
			return nil, err
		}
	}
	ss.mu.Lock()
	ss.state = sessionFinalized
	ss.mu.Unlock()
	return out, nil
}

// Reset reopens a sharded session for the next epoch: every shard advances
// its epoch (skipping shards that already advanced, so a retried Reset after
// a partial failure cannot double-advance a shard), and the merged epoch
// counter moves with them. A durable epoch whose shards all sealed but
// whose merged-seal manifest record never landed (a failed append, followed
// by the caller choosing Reset over a Finalize retry) is healed first —
// otherwise advancing past it would orphan a fully-sealed epoch that
// AuditSegmentedLog could never accept.
func (ss *ShardedSession) Reset() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.state == sessionFinalizing {
		return fmt.Errorf("%w: session is finalizing", ErrBadConfig)
	}
	if ss.opts.Segmented != nil {
		if err := ss.healMergedSealLocked(); err != nil {
			return err
		}
	}
	for i, s := range ss.shards {
		if s.Epoch() > ss.epoch {
			continue // already advanced by an earlier, partially failed Reset
		}
		if err := s.Reset(); err != nil {
			return fmt.Errorf("vdp: resetting shard %d: %w", i, err)
		}
	}
	ss.epoch++
	ss.state = sessionOpen
	return nil
}

// Compact closes a finalized merged epoch with per-shard snapshot records
// instead of Resets: each shard pins its sealed transcript's digest in its
// own segment (the manifest's merged seal already binds them together), so
// ResumeShardedSession boots every shard from its snapshot. A shard whose
// sealed transcript is unrecoverable cannot be compacted — the error names
// it, and Reset remains the way to close such an epoch. Like Reset, a
// missing merged-seal manifest record is healed first, and a retry skips
// shards an earlier partial Compact already advanced.
func (ss *ShardedSession) Compact() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.state != sessionFinalized {
		return fmt.Errorf("%w: only a finalized epoch can be compacted", ErrBadConfig)
	}
	if ss.opts.Segmented != nil {
		if err := ss.healMergedSealLocked(); err != nil {
			return err
		}
	}
	for i, s := range ss.shards {
		if s.Epoch() > ss.epoch {
			continue // already advanced by an earlier, partially failed Compact
		}
		if err := s.Compact(); err != nil {
			return fmt.Errorf("vdp: compacting shard %d: %w", i, err)
		}
	}
	ss.epoch++
	ss.state = sessionOpen
	return nil
}

// healMergedSealLocked appends the current epoch's missing merged-seal
// manifest record when every shard is sealed with its transcript kept —
// the state a failed appendMergedSeal leaves behind. A no-op when the
// epoch is not fully sealed (nothing to bind), was consumed by a protocol
// error (no transcripts to bind), or is already sealed in the manifest.
// Callers hold ss.mu.
func (ss *ShardedSession) healMergedSealLocked() error {
	ts := make([]*Transcript, len(ss.shards))
	for i, s := range ss.shards {
		if s.Epoch() != ss.epoch || !s.Finalized() {
			return nil
		}
		if ts[i] = s.SealedTranscript(); ts[i] == nil {
			return nil
		}
	}
	seals, err := readMergedSeals(ss.opts.Segmented)
	if err != nil {
		return err
	}
	if _, ok := seals[ss.epoch]; ok {
		return nil
	}
	return appendMergedSeal(ss.opts.Segmented, ss.epoch, len(ss.shards), MergedTranscriptDigest(ss.pub, ts))
}

// MergedTranscriptDigest pins a sharded epoch: for a single shard it is
// exactly TranscriptDigest of that shard's transcript (so an unsharded
// deployment and a Shards = 1 sharded one agree byte for byte), and for K
// shards it is SHA-256 over a domain tag, the shard count, and the K
// per-shard transcript digests in shard order. The shard order is the merge
// order, so two parties agree on the merged digest iff they agree on every
// bulletin-board byte of every shard.
func MergedTranscriptDigest(pub *Public, shards []*Transcript) []byte {
	ds := make([][]byte, len(shards))
	for i, t := range shards {
		ds[i] = TranscriptDigest(pub, t)
	}
	return mergedDigestFromShards(ds)
}

// mergedDigestFromShards folds already-computed per-shard transcript digests
// into the merged digest. The live tail uses it directly: its per-shard
// digests come from incremental seal verification, never from re-decoding
// transcripts.
func mergedDigestFromShards(digests [][]byte) []byte {
	if len(digests) == 1 {
		return digests[0]
	}
	h := sha256.New()
	h.Write([]byte("vdp/merged-transcript/1"))
	writeU32(h, uint32(len(digests)))
	for _, d := range digests {
		chunk(h, d)
	}
	return h.Sum(nil)
}

// checkShardAssignment verifies the shard map over a merged epoch's
// transcripts: every client sits on the shard ShardOf assigns it to, and no
// client appears on two shards.
func checkShardAssignment(shards []*Transcript) error {
	seen := make(map[int]int) // client ID -> shard
	for i, t := range shards {
		if t == nil {
			return fmt.Errorf("%w: shard %d transcript is missing", ErrAuditFail, i)
		}
		for _, cp := range t.Clients {
			if want := ShardOf(cp.ID, len(shards)); want != i {
				return fmt.Errorf("%w: client %d appears on shard %d but the shard map assigns it to shard %d",
					ErrAuditFail, cp.ID, i, want)
			}
			if prev, dup := seen[cp.ID]; dup {
				return fmt.Errorf("%w: client %d appears on shards %d and %d", ErrAuditFail, cp.ID, prev, i)
			}
			seen[cp.ID] = i
		}
	}
	return nil
}

// mergeReleases combines the per-shard releases into the epoch's release:
// raw counts add, so the merged bin j carries Shards·K independent
// Binomial(nb, ½) noises; the debiasing mean and the standard deviation
// scale accordingly.
func mergeReleases(pub *Public, shards []*Transcript) (*Release, error) {
	m := pub.cfg.Bins
	rel := &Release{
		Raw:      make([]int64, m),
		Estimate: make([]float64, m),
		Stddev:   stddev(pub.cfg.Provers*len(shards), pub.nb),
	}
	mean := float64(len(shards)) * pub.NoiseMean()
	for i, t := range shards {
		if t == nil || t.Release == nil {
			return nil, fmt.Errorf("%w: shard %d has no release", ErrBadConfig, i)
		}
		if len(t.Release.Raw) != m {
			return nil, fmt.Errorf("%w: shard %d release has %d bins, want %d", ErrBadConfig, i, len(t.Release.Raw), m)
		}
		for j, raw := range t.Release.Raw {
			rel.Raw[j] += raw
		}
	}
	for j := range rel.Raw {
		rel.Estimate[j] = float64(rel.Raw[j]) - mean
	}
	return rel, nil
}

// AuditMerged audits a merged (sharded) epoch from its per-shard
// transcripts: every shard transcript is fully re-verified (exactly Audit),
// every client must live on the shard ShardOf assigns it to — so a curator
// cannot smuggle a client onto two shards or move one to a shard of its
// choosing — no client may appear twice across the board, and, when release
// is non-nil, the combined release must equal the recomputed merge of the
// shard releases. workers follows the AuditParallel convention (0 = all
// cores) and is the width given to each shard's audit in turn.
func AuditMerged(ctx context.Context, pub *Public, shards []*Transcript, release *Release, workers int) error {
	if len(shards) == 0 {
		return fmt.Errorf("%w: merged epoch has no shard transcripts", ErrAuditFail)
	}
	if err := checkShardAssignment(shards); err != nil {
		return err
	}
	for i, t := range shards {
		if err := auditParallel(ctx, pub, t, workers); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	if release == nil {
		return nil
	}
	want, err := mergeReleases(pub, shards)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrAuditFail, err)
	}
	if len(release.Raw) != len(want.Raw) {
		return fmt.Errorf("%w: merged release has %d bins, shards produce %d", ErrAuditFail, len(release.Raw), len(want.Raw))
	}
	for j := range want.Raw {
		if release.Raw[j] != want.Raw[j] {
			return fmt.Errorf("%w: merged bin %d = %d, shard releases sum to %d",
				ErrAuditFail, j, release.Raw[j], want.Raw[j])
		}
	}
	return nil
}
