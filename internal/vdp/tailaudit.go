package vdp

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/morra"
	"repro/internal/pedersen"
	"repro/internal/store"
)

// Live audit tail: the analytical half of the board split. AuditLog
// re-verifies a sealed epoch from scratch — O(epoch) work after the fact —
// while a TailAuditor follows the board log as it is written, spending the
// per-client verification work at arrival time and carrying three pieces of
// rolling state: the arrival-grammar machine (the same
// submission/verdict/withdraw/seal grammar replayLog and AuditLog enforce),
// a roster shadow (every client's logged bytes in board order), and the
// running Line-13 client product (the Σ-OR-vetted share commitments of every
// roster client, folded per bin and prover as verdicts land). At seal time
// the remaining work is O(M·nb·K) — fold the accumulator into the adjusted
// coin commitments, byte-compare the sealed client section against the
// shadow, re-derive the release — independent of how many clients the epoch
// admitted. Any third party holding the log can follow the bulletin board
// live, which is the paper's public-verifiability story made continuous.

// TailOptions configures a live audit tail.
type TailOptions struct {
	// Workers is the verification pool width (0 = GOMAXPROCS).
	Workers int
	// Window is how many unverified submissions accumulate before they are
	// folded through one batched Σ-OR check (0 = 64). A bigger window
	// amortizes the random-linear-combination batching better; any pending
	// remainder is flushed when a verdict needs it or at seal time.
	Window int
	// Budget, when set, makes the tail enforce the session's charging policy
	// in addition to replaying the charge chain: every admitted client must
	// be charged EpochCost at admission, budget refusals must be genuine
	// (the replayed spend really cannot afford another epoch), and no epoch
	// seals with an uncharged roster client. Without it the tail still
	// verifies chain integrity — any dropped, injected, or reordered charge
	// is flagged — but cannot judge whether the policy itself was honoured.
	Budget *BudgetConfig
}

// defaultTailWindow is the submission batch a tail verifies at once.
const defaultTailWindow = 64

// tailClient is one roster-shadow entry: a submission the tail has seen,
// with where it saw it (for error attribution) and what it concluded.
type tailClient struct {
	raw        []byte // the submission's encoded ClientPublic, as logged
	pub        *ClientPublic
	offset     int64 // submission record offset in the log
	index      int   // submission record index
	checked    bool  // board proof decided by the batched Σ-OR check
	valid      bool  // board proof verdict
	decided    bool  // a verdict record landed
	reject     bool  // that verdict was a rejection
	overBudget bool  // that verdict was a budget refusal (never verified)
	folded     bool  // share commitments folded into the running product
}

// TailAuditor incrementally audits one board log (or one shard segment).
// Records are consumed in append order — via Feed, or by Poll draining an
// attached store.Tailer — and every grammar violation, forged verdict, or
// seal divergence is reported at the first divergent record, with its
// offset. Errors are sticky: a tail that has flagged its log refuses to
// consume further records, exactly like a human auditor who stops trusting
// a ledger at the first bad line.
//
// A TailAuditor is safe for concurrent use, though records must arrive in
// log order (one goroutine per log is the natural shape).
type TailAuditor struct {
	pub     *Public
	workers int
	window  int

	mu     sync.Mutex
	tailer store.Tailer
	err    error

	shardIdx   int
	shardCount int

	recIdx  int // records consumed, all epochs
	epoch   int
	order   []*tailClient
	byID    map[int]*tailClient
	pending []*tailClient
	// prod[j][pk] is the running product of the roster clients' share
	// commitments for bin j, prover pk — Line 13's client factor, built as
	// verdicts land so the seal-time check never walks the roster again.
	prod    [][]*pedersen.Commitment
	sealed  bool
	sealAsm sealAssembly
	digest  []byte
	history map[int][]byte // sealed epoch -> verified digest
	// ledger replays the budget-charge chain across epochs (budgets are
	// lifetime state, so clearEpoch never touches it). Chain integrity is
	// always enforced; policy checks additionally when TailOptions.Budget
	// was provided.
	ledger *budgetLedger
}

// NewTailAuditor creates a live auditor for a single board log. Feed it
// records directly, or AttachTailer + Poll to drain a store tail.
func NewTailAuditor(pub *Public, opts TailOptions) *TailAuditor {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	window := opts.Window
	if window <= 0 {
		window = defaultTailWindow
	}
	return &TailAuditor{
		pub:        pub,
		workers:    workers,
		window:     window,
		shardCount: 1,
		byID:       make(map[int]*tailClient),
		history:    make(map[int][]byte),
		ledger:     newBudgetLedger(opts.Budget),
	}
}

// TailAuditLog opens a live tail on a tailable board log: the returned
// auditor drains new records on every Poll.
func TailAuditLog(pub *Public, log store.TailableLog, opts TailOptions) (*TailAuditor, error) {
	t, err := log.Tail()
	if err != nil {
		return nil, err
	}
	a := NewTailAuditor(pub, opts)
	a.AttachTailer(t)
	return a, nil
}

// SetShard pins the auditor to one shard of a sharded deployment: every
// submission must belong to shard index under ShardOf(id, count), so a
// curator cannot smuggle a client onto a shard of its choosing. Call before
// feeding any record.
func (a *TailAuditor) SetShard(index, count int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.shardIdx, a.shardCount = index, count
}

// AttachTailer hands the auditor a store tail to drain on Poll. The auditor
// owns the tailer from here: Close closes it.
func (a *TailAuditor) AttachTailer(t store.Tailer) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tailer = t
}

// Poll drains every record the attached tailer has available, returning how
// many were consumed. A store-level corruption error or an audit failure is
// sticky and returned from every later call; running out of appended
// records is not an error.
func (a *TailAuditor) Poll() (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return 0, a.err
	}
	if a.tailer == nil {
		return 0, fmt.Errorf("vdp: tail: no tailer attached")
	}
	n := 0
	for {
		rec, off, err := a.tailer.Next()
		if errors.Is(err, store.ErrNoRecord) {
			return n, nil
		}
		if err != nil {
			a.err = err
			return n, err
		}
		if err := a.feedLocked(rec, off); err != nil {
			return n, err
		}
		n++
	}
}

// Feed consumes one record (at the given log offset) in append order.
func (a *TailAuditor) Feed(rec *store.Record, off int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return a.err
	}
	return a.feedLocked(rec, off)
}

func (a *TailAuditor) feedLocked(rec *store.Record, off int64) error {
	if err := a.consume(rec, off); err != nil {
		a.err = err
		return err
	}
	a.recIdx++
	return nil
}

// errAt stamps an audit failure with the record index and offset it was
// detected at — the first divergent record, since errors are sticky.
func (a *TailAuditor) errAt(off int64, format string, args ...any) error {
	return fmt.Errorf("%w: tail record %d (offset %d): %s", ErrAuditFail, a.recIdx, off, fmt.Sprintf(format, args...))
}

// consume runs one record through the arrival grammar and rolling state.
// The grammar is replayLog's, hardened with AuditLog's cross-checks: the
// tail never certifies a log the server's own recovery would refuse.
func (a *TailAuditor) consume(rec *store.Record, off int64) error {
	if int(rec.Epoch) != a.epoch {
		return a.errAt(off, "belongs to epoch %d, live epoch is %d", rec.Epoch, a.epoch)
	}
	if a.sealAsm.inProgress() && rec.Kind != RecordSealChunk {
		return a.errAt(off, "kind %d interleaved with epoch %d's seal chunks", rec.Kind, a.epoch)
	}
	if a.sealed && rec.Kind != RecordReset && rec.Kind != RecordSnapshot {
		return a.errAt(off, "kind %d after epoch %d was sealed", rec.Kind, a.epoch)
	}
	switch rec.Kind {
	case RecordSubmission:
		return a.consumeSubmission(rec, off)
	case RecordVerdict:
		return a.consumeVerdict(rec, off)
	case RecordBudgetCharge:
		return a.consumeCharge(rec, off)
	case RecordWithdraw:
		id, err := decodeWithdraw(rec.Payload)
		if err != nil {
			return a.errAt(off, "withdrawal: %v", err)
		}
		rc, ok := a.byID[id]
		if !ok {
			return a.errAt(off, "withdrawal of unknown client %d", id)
		}
		if rc.decided {
			// A session only withdraws clients whose verification never
			// completed; this is a forgery trying to erase a decided client.
			return a.errAt(off, "withdrawal of decided client %d (verdict already on the board)", id)
		}
		delete(a.byID, id)
		a.drop(rc)
		return nil
	case RecordSeal:
		return a.verifySeal(rec.Payload, off)
	case RecordSealChunk:
		done, err := a.sealAsm.add(rec.Payload)
		if err != nil {
			return a.errAt(off, "%v", err)
		}
		if done != nil {
			return a.verifySeal(done, off)
		}
		return nil
	case RecordReset:
		a.epoch++
		a.clearEpoch()
		return nil
	case RecordSnapshot:
		if !a.sealed {
			return a.errAt(off, "snapshot of epoch %d, which is not sealed", a.epoch)
		}
		snapEpoch, d, err := decodeSnapshot(rec.Payload)
		if err != nil {
			return a.errAt(off, "snapshot: %v", err)
		}
		if snapEpoch != a.epoch {
			return a.errAt(off, "snapshot pins epoch %d, live epoch is %d", snapEpoch, a.epoch)
		}
		if !bytes.Equal(d, a.digest) {
			return a.errAt(off, "snapshot digest for epoch %d disagrees with the live audit", a.epoch)
		}
		a.epoch++
		a.clearEpoch()
		return nil
	default:
		return a.errAt(off, "unknown kind %d", rec.Kind)
	}
}

func (a *TailAuditor) consumeSubmission(rec *store.Record, off int64) error {
	sub, err := a.pub.DecodeClientSubmission(rec.Payload)
	if err != nil {
		return a.errAt(off, "submission: %v", err)
	}
	// The raw ClientPublic bytes, exactly as logged: the seal walk compares
	// the sealed client section against these, byte for byte.
	r := wireReader{b: rec.Payload}
	r.version()
	raw := r.lpBytes()
	if r.err != nil {
		return a.errAt(off, "submission: %v", r.err)
	}
	id := sub.Public.ID
	if a.shardCount > 1 {
		if want := ShardOf(id, a.shardCount); want != a.shardIdx {
			return a.errAt(off, "client %d belongs to shard %d, not shard %d", id, want, a.shardIdx)
		}
	}
	if prev, dup := a.byID[id]; dup {
		if prev.decided {
			return a.errAt(off, "duplicate submission from decided client %d", id)
		}
		// Undecided earlier submission + retry = lost withdrawal; the retry
		// supersedes it, exactly as replayLog resolves the same log.
		a.drop(prev)
	}
	cl := &tailClient{raw: raw, pub: sub.Public, offset: off, index: a.recIdx}
	a.byID[id] = cl
	a.order = append(a.order, cl)
	a.pending = append(a.pending, cl)
	if len(a.pending) >= a.window {
		return a.flushPending()
	}
	return nil
}

// consumeCharge replays one budget-charge record through the tail's ledger:
// the chain link, cumulative arithmetic, and — when the tail knows the
// policy — amount and cap are all re-verified, and the charge must name a
// roster client of the live epoch that was not refused over budget.
func (a *TailAuditor) consumeCharge(rec *store.Record, off int64) error {
	id, chEpoch, _, _, _, err := decodeBudgetCharge(rec.Payload)
	if err != nil {
		return a.errAt(off, "budget charge: %v", err)
	}
	if chEpoch != a.epoch {
		return a.errAt(off, "budget charge pins epoch %d, live epoch is %d", chEpoch, a.epoch)
	}
	rc, ok := a.byID[id]
	if !ok {
		return a.errAt(off, "budget charge for unknown client %d", id)
	}
	if rc.overBudget {
		return a.errAt(off, "budget charge for client %d, which was refused over budget", id)
	}
	if err := a.ledger.apply(rec.Payload); err != nil {
		return a.errAt(off, "%v", err)
	}
	return nil
}

func (a *TailAuditor) consumeVerdict(rec *store.Record, off int64) error {
	id, reject, onBoard, err := decodeVerdict(rec.Payload)
	if err != nil {
		return a.errAt(off, "verdict: %v", err)
	}
	rc, ok := a.byID[id]
	if !ok {
		return a.errAt(off, "verdict for unknown client %d", id)
	}
	if rc.decided {
		// A session writes exactly one verdict per admitted submission; a
		// second one is an attempt to flip an already-public outcome.
		return a.errAt(off, "second verdict for client %d", id)
	}
	if reject != nil && !onBoard && isBudgetRefusalReason(reject.Error()) {
		// A budget refusal is decided before any verification runs, so the
		// proof cross-check table below does not apply — the tail instead
		// verifies the refusal's *justification* against its replayed ledger
		// (when it knows the policy): a server claiming exhaustion for a
		// client whose spend affords another epoch is suppressing data.
		if a.ledger.cfg != nil {
			if a.ledger.chargedInEpoch(a.epoch, id) {
				return a.errAt(off, "client %d refused over budget after being charged this epoch", id)
			}
			if a.ledger.spent[id]+a.ledger.cfg.EpochCost <= a.ledger.cfg.Total {
				return a.errAt(off, "client %d refused over budget, but its replayed spend (%d of %d µε) affords another epoch",
					id, a.ledger.spent[id], a.ledger.cfg.Total)
			}
		}
		rc.decided = true
		rc.reject = true
		rc.overBudget = true
		// Off-board like a payload refusal: the ID stays reserved, the
		// public part never joins the roster shadow or the Σ-OR window.
		a.drop(rc)
		return nil
	}
	if !rc.checked {
		if err := a.flushPending(); err != nil {
			return err
		}
	}
	// Cross-check the logged verdict against this tail's own verification:
	// the log's claim and the cryptography must agree, record by record.
	switch {
	case reject == nil && !onBoard:
		// Session.verify never accepts off-board: acceptance means every
		// check passed, and passing clients are posted.
		return a.errAt(off, "client %d accepted but marked off-board — no session writes this", id)
	case reject == nil && !rc.valid:
		return a.errAt(off, "client %d accepted, but its board proof fails (submission at offset %d)", id, rc.offset)
	case reject != nil && onBoard && rc.valid:
		return a.errAt(off, "client %d rejected on the board, but its board proof verifies (submission at offset %d)", id, rc.offset)
	case reject != nil && !onBoard && !rc.valid:
		// A payload (private-channel) rejection implies the board proof
		// passed — Session.verify decides the board first and attributes
		// board failures as on-board verdicts.
		return a.errAt(off, "client %d refused off-board as a payload dispute, but its board proof fails (submission at offset %d)", id, rc.offset)
	}
	rc.decided = true
	rc.reject = reject != nil
	if reject == nil {
		a.fold(rc)
	} else if !onBoard {
		// Payload-refused: the public part never reaches the board, exactly
		// like Session's removeFromOrderLocked; the ID stays reserved.
		a.drop(rc)
	}
	return nil
}

// flushPending decides every pending submission's board proof with one
// batched Σ-OR check — the same filterValidClientsBatch the session and the
// offline auditor use, so all three always reach identical verdicts.
func (a *TailAuditor) flushPending() error {
	if len(a.pending) == 0 {
		return nil
	}
	pubs := make([]*ClientPublic, len(a.pending))
	for i, cl := range a.pending {
		pubs[i] = cl.pub
	}
	_, rejected, err := a.pub.filterValidClientsBatch(context.Background(), pubs, a.workers)
	if err != nil {
		return err
	}
	for _, cl := range a.pending {
		cl.checked = true
		_, bad := rejected[cl.pub.ID]
		cl.valid = !bad
	}
	a.pending = a.pending[:0]
	return nil
}

// fold accumulates one roster client's share commitments into the running
// Line-13 product. Commitment Add is immutable, so seal-time reads copy
// freely.
func (a *TailAuditor) fold(rc *tailClient) {
	if rc.folded || !rc.valid {
		return
	}
	m := a.pub.cfg.Bins
	k := a.pub.cfg.Provers
	if a.prod == nil {
		a.prod = make([][]*pedersen.Commitment, m)
		for j := 0; j < m; j++ {
			a.prod[j] = make([]*pedersen.Commitment, k)
			for pk := 0; pk < k; pk++ {
				a.prod[j][pk] = a.pub.pp.Zero()
			}
		}
	}
	for j := 0; j < m; j++ {
		for pk := 0; pk < k; pk++ {
			a.prod[j][pk] = a.prod[j][pk].Add(rc.pub.ShareCommitments[j][pk])
		}
	}
	rc.folded = true
}

// drop splices a client out of the roster shadow (and the unchecked
// window).
func (a *TailAuditor) drop(rc *tailClient) {
	for i, c := range a.order {
		if c == rc {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
	for i, c := range a.pending {
		if c == rc {
			a.pending = append(a.pending[:i], a.pending[i+1:]...)
			break
		}
	}
}

// clearEpoch resets the per-epoch rolling state at an epoch boundary.
func (a *TailAuditor) clearEpoch() {
	a.order = nil
	a.byID = make(map[int]*tailClient)
	a.pending = nil
	a.prod = nil
	a.sealed = false
	a.sealAsm = sealAssembly{}
	a.digest = nil
}

// verifySeal is the O(1) seal-time check (constant in the epoch's client
// count): flush the last unchecked window, byte-compare the sealed client
// section against the roster shadow, then verify only the O(M·nb·K) tail —
// coin proofs, Morra coins, the Line-13 equation with the pre-folded client
// product, and the aggregation — and derive the transcript digest without
// ever re-decoding a client.
func (a *TailAuditor) verifySeal(sealBytes []byte, off int64) error {
	if err := a.flushPending(); err != nil {
		return err
	}
	// Clients still undecided at seal time (a DeferVerification session
	// writes no per-arrival verdicts) join the product by their Σ-OR
	// verdict, exactly as Finalize's batch check decides them.
	for _, cl := range a.order {
		if !cl.decided {
			a.fold(cl)
		}
		if a.ledger.cfg != nil && !a.ledger.chargedInEpoch(a.epoch, cl.pub.ID) {
			// Policy: admission always charges. A roster client reaching the
			// seal uncharged means the curator gave away a free epoch.
			return a.errAt(off, "epoch %d seals with roster client %d uncharged", a.epoch, cl.pub.ID)
		}
	}
	sp, err := a.pub.splitSealedTranscript(sealBytes)
	if err != nil {
		return a.errAt(off, "seal: %v", err)
	}
	if len(sp.clientRaw) != len(a.order) {
		return a.errAt(off, "seal lists %d clients, the live tail admitted %d", len(sp.clientRaw), len(a.order))
	}
	for i, raw := range sp.clientRaw {
		if !bytes.Equal(raw, a.order[i].raw) {
			return a.errAt(off, "seal position %d disagrees with the logged submission of client %d (offset %d)",
				i, a.order[i].pub.ID, a.order[i].offset)
		}
	}

	k := a.pub.cfg.Provers
	m := a.pub.cfg.Bins
	if len(sp.coinMsgs) != k || len(sp.morra) != k || len(sp.outputs) != k {
		return a.errAt(off, "seal covers %d/%d/%d prover records, want %d",
			len(sp.coinMsgs), len(sp.morra), len(sp.outputs), k)
	}
	if sp.release == nil {
		return a.errAt(off, "seal carries no release")
	}

	// Per-prover checks, concurrently, mirroring auditParallel — but Line
	// 13's client factor is the rolling product, not a roster walk.
	inner := a.workers / k
	if inner < 1 {
		inner = 1
	}
	pv := NewVerifierParallel(a.pub, inner)
	err = forEach(context.Background(), a.workers, k, func(pk int) error {
		msg := sp.coinMsgs[pk]
		if msg.Prover != pk {
			return fmt.Errorf("coin message %d claims prover %d", pk, msg.Prover)
		}
		if err := pv.VerifyCoinCommitments(msg); err != nil {
			return err
		}
		rec := sp.morra[pk]
		xs, err := morra.Combine(a.pub.pp, rec.Commits, rec.Reveals)
		if err != nil {
			return fmt.Errorf("morra record for prover %d: %v", pk, err)
		}
		bits := morra.Bits(xs)
		if len(bits) != m*a.pub.nb {
			return fmt.Errorf("morra record for prover %d has %d coins, want %d", pk, len(bits), m*a.pub.nb)
		}
		adjusted, err := pv.AdjustedCoinCommitments(msg, reshapeBits(bits, m, a.pub.nb))
		if err != nil {
			return err
		}
		out := sp.outputs[pk]
		if out.Prover != pk {
			return fmt.Errorf("output %d claims prover %d", pk, out.Prover)
		}
		if len(out.Y) != m || len(out.Z) != m {
			return fmt.Errorf("prover %d output covers %d/%d bins, want %d", pk, len(out.Y), len(out.Z), m)
		}
		for j := 0; j < m; j++ {
			e := a.pub.pp.Zero()
			if a.prod != nil {
				e = a.prod[j][pk]
			}
			for _, c := range adjusted[j] {
				e = e.Add(c)
			}
			if !a.pub.pp.Verify(e, out.Y[j], out.Z[j]) {
				return fmt.Errorf("prover %d bin %d: commitment product does not open to reported (y, z)", pk, j)
			}
		}
		return nil
	})
	if err != nil {
		return a.errAt(off, "seal: %v", err)
	}

	release, err := NewVerifierParallel(a.pub, a.workers).Aggregate(sp.outputs)
	if err != nil {
		return a.errAt(off, "seal: %v", err)
	}
	if len(release.Raw) != len(sp.release.Raw) {
		return a.errAt(off, "seal release has %d bins, aggregation produces %d", len(sp.release.Raw), len(release.Raw))
	}
	for j := range release.Raw {
		if release.Raw[j] != sp.release.Raw[j] {
			return a.errAt(off, "seal bin %d = %d, aggregation produces %d", j, sp.release.Raw[j], release.Raw[j])
		}
	}

	a.sealed = true
	a.digest = sp.digest(a.pub)
	a.history[a.epoch] = a.digest
	return nil
}

// Epoch returns the epoch the tail is currently following.
func (a *TailAuditor) Epoch() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// Records returns how many records the tail has consumed.
func (a *TailAuditor) Records() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.recIdx
}

// Clients returns the live roster-shadow size for the current epoch.
func (a *TailAuditor) Clients() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.order)
}

// Sealed reports whether the current epoch's seal has been verified.
func (a *TailAuditor) Sealed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sealed
}

// Digest returns the current epoch's verified transcript digest (nil until
// the epoch seals cleanly). It equals TranscriptDigest over the sealed
// transcript.
func (a *TailAuditor) Digest() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.digest
}

// LedgerDigest returns the tail's replayed budget-ledger chain head — the
// genesis digest before any charge. When the followed session runs a
// budget, this must equal Session.LedgerDigest byte for byte; a mismatch
// means the two replayed different charge streams.
func (a *TailAuditor) LedgerDigest() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ledger.digest()
}

// VerifiedDigest returns the verified digest of a sealed epoch the tail has
// followed, and whether that epoch has sealed yet.
func (a *TailAuditor) VerifiedDigest(epoch int) ([]byte, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.history[epoch]
	return d, ok
}

// ReverifySeal re-runs the seal-time verification walk against the state
// the tail has accumulated for the live epoch, without consuming a record
// or moving the grammar position. Feed/Poll callers never need it: it
// exists so the perf harness can time the constant-cost seal step in
// isolation from the per-arrival work it rides on.
func (a *TailAuditor) ReverifySeal(sealBytes []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.verifySeal(sealBytes, -1)
}

// Err returns the sticky audit failure, if any.
func (a *TailAuditor) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Close releases the attached tailer, if any.
func (a *TailAuditor) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tailer == nil {
		return nil
	}
	t := a.tailer
	a.tailer = nil
	return t.Close()
}

// MergedTailAuditor follows a sharded epoch live: one TailAuditor per shard
// (each pinned to its ShardOf slice, so no client can appear on a foreign
// shard — or, since ShardOf is a function, on two shards at once) plus the
// manifest's merged-seal stream. VerifyMerged reproduces
// MergedTranscriptDigest from the per-shard verified digests and
// cross-checks the manifest's claim.
type MergedTailAuditor struct {
	pub    *Public
	shards []*TailAuditor

	mu     sync.Mutex
	seals  map[int][]byte
	manIdx int
}

// NewMergedTailAuditor creates a live auditor for a K-shard deployment.
func NewMergedTailAuditor(pub *Public, shards int, opts TailOptions) *MergedTailAuditor {
	if shards < 1 {
		shards = 1
	}
	m := &MergedTailAuditor{pub: pub, seals: make(map[int][]byte)}
	for i := 0; i < shards; i++ {
		a := NewTailAuditor(pub, opts)
		a.SetShard(i, shards)
		m.shards = append(m.shards, a)
	}
	return m
}

// Shards returns the shard count.
func (m *MergedTailAuditor) Shards() int { return len(m.shards) }

// Shard returns shard i's TailAuditor; feed it that shard's records.
func (m *MergedTailAuditor) Shard(i int) *TailAuditor { return m.shards[i] }

// FeedManifest consumes one manifest record, enforcing the same grammar
// readMergedSeals does: store bookkeeping is skipped, every merged seal
// must carry the right shard count, no epoch seals twice, and a kind no
// ShardedSession writes is flagged.
func (m *MergedTailAuditor) FeedManifest(rec *store.Record, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := m.manIdx
	m.manIdx++
	if rec.Kind >= store.KindSegmentedInit {
		return nil // store-reserved bookkeeping
	}
	if rec.Kind != RecordMergedSeal {
		return fmt.Errorf("%w: manifest record %d (offset %d) has unknown kind %d", ErrAuditFail, i, off, rec.Kind)
	}
	shards, digest, err := decodeMergedSeal(rec.Payload)
	if err != nil {
		return fmt.Errorf("%w: manifest record %d (offset %d): %v", ErrAuditFail, i, off, err)
	}
	if shards != len(m.shards) {
		return fmt.Errorf("%w: manifest record %d (offset %d) claims %d shards, tail follows %d",
			ErrAuditFail, i, off, shards, len(m.shards))
	}
	epoch := int(rec.Epoch)
	if _, dup := m.seals[epoch]; dup {
		return fmt.Errorf("%w: manifest record %d (offset %d) seals epoch %d twice", ErrAuditFail, i, off, epoch)
	}
	m.seals[epoch] = digest
	return nil
}

// SetMergedSeal registers an externally-fetched merged-seal claim — the
// RPC-tail counterpart of FeedManifest, for followers that learn the seal
// from a cluster node instead of a manifest log. Re-registering the same
// claim is a no-op; a conflicting claim for an epoch already registered is
// an audit failure (two merged seals for one epoch means a forked merge).
func (m *MergedTailAuditor) SetMergedSeal(epoch, shards int, digest []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if shards != len(m.shards) {
		return fmt.Errorf("%w: merged seal for epoch %d claims %d shards, tail follows %d",
			ErrAuditFail, epoch, shards, len(m.shards))
	}
	if prev, ok := m.seals[epoch]; ok {
		if !bytes.Equal(prev, digest) {
			return fmt.Errorf("%w: conflicting merged seals for epoch %d", ErrAuditFail, epoch)
		}
		return nil
	}
	m.seals[epoch] = append([]byte(nil), digest...)
	return nil
}

// VerifyMerged reports on a merged epoch: once every shard has sealed and
// verified it, the merged digest is derived from the per-shard digests (in
// shard order, exactly MergedTranscriptDigest) and checked against the
// manifest's merged seal when one has arrived. ready is false while some
// shard has not sealed the epoch yet; a shard that has flagged its segment
// makes VerifyMerged fail outright.
func (m *MergedTailAuditor) VerifyMerged(epoch int) (digest []byte, ready bool, err error) {
	ds := make([][]byte, len(m.shards))
	for i, a := range m.shards {
		if err := a.Err(); err != nil {
			return nil, false, fmt.Errorf("shard %d: %w", i, err)
		}
		d, ok := a.VerifiedDigest(epoch)
		if !ok {
			return nil, false, nil
		}
		ds[i] = d
	}
	digest = mergedDigestFromShards(ds)
	m.mu.Lock()
	want, ok := m.seals[epoch]
	m.mu.Unlock()
	if ok && !bytes.Equal(want, digest) {
		return nil, true, fmt.Errorf("%w: manifest merged seal for epoch %d disagrees with the live per-shard audits",
			ErrAuditFail, epoch)
	}
	return digest, true, nil
}

// SegmentedTail is the live counterpart of AuditSegmentedLog: a
// MergedTailAuditor wired to every segment's (and the manifest's) store
// tail, drained together by Poll.
type SegmentedTail struct {
	merged  *MergedTailAuditor
	manTail store.Tailer
}

// TailAuditMerged opens a live audit tail over a segmented board log.
func TailAuditMerged(pub *Public, seg *store.SegmentedLog, opts TailOptions) (*SegmentedTail, error) {
	m := NewMergedTailAuditor(pub, seg.Shards(), opts)
	for i := 0; i < seg.Shards(); i++ {
		t, err := seg.Segment(i).Tail()
		if err != nil {
			m.Close()
			return nil, err
		}
		m.Shard(i).AttachTailer(t)
	}
	manTail, err := seg.Manifest().Tail()
	if err != nil {
		m.Close()
		return nil, err
	}
	return &SegmentedTail{merged: m, manTail: manTail}, nil
}

// Merged returns the underlying merged auditor.
func (st *SegmentedTail) Merged() *MergedTailAuditor { return st.merged }

// Poll drains every shard tail and the manifest tail, returning the total
// records consumed. The first shard or manifest failure is returned (shard
// failures are sticky in their TailAuditor).
func (st *SegmentedTail) Poll() (int, error) {
	n := 0
	for i, a := range st.merged.shards {
		k, err := a.Poll()
		n += k
		if err != nil {
			return n, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	for {
		rec, off, err := st.manTail.Next()
		if errors.Is(err, store.ErrNoRecord) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := st.merged.FeedManifest(rec, off); err != nil {
			return n, err
		}
		n++
	}
}

// VerifyMerged reports on a merged epoch; see MergedTailAuditor.
func (st *SegmentedTail) VerifyMerged(epoch int) ([]byte, bool, error) {
	return st.merged.VerifyMerged(epoch)
}

// Close releases every attached store tail.
func (st *SegmentedTail) Close() error {
	err := st.merged.Close()
	if st.manTail != nil {
		if cerr := st.manTail.Close(); err == nil {
			err = cerr
		}
		st.manTail = nil
	}
	return err
}

// Close releases every shard's attached tailer.
func (m *MergedTailAuditor) Close() error {
	var first error
	for _, a := range m.shards {
		if err := a.Close(); first == nil {
			first = err
		}
	}
	return first
}

// splitSeal is a sealed transcript shallow-parsed for the tail's seal walk:
// the client section stays raw (per-client byte slices, no elliptic-curve
// decode — that is the O(n) cost the tail already paid at arrival time),
// while the O(M·nb·K) prover tail is fully decoded for verification.
type splitSeal struct {
	clientRaw [][]byte
	coinMsgs  []*CoinCommitMsg
	morra     []*MorraRecord
	outputs   []*ProverOutput
	release   *Release
}

// splitSealedTranscript shallow-parses an encoded transcript; the layout is
// exactly DecodeTranscript's, with the client section left undecoded.
func (p *Public) splitSealedTranscript(b []byte) (*splitSeal, error) {
	r := wireReader{b: b}
	r.version()
	sp := &splitSeal{}

	nClients := r.u32()
	if r.err == nil && nClients > maxWireDim {
		return nil, fmt.Errorf("vdp: transcript claims %d clients", nClients)
	}
	for i := uint32(0); i < nClients && r.err == nil; i++ {
		raw := r.lpBytes()
		if r.err != nil {
			break
		}
		sp.clientRaw = append(sp.clientRaw, raw)
	}

	nCoin := r.u32()
	if r.err == nil && nCoin > maxWireDim {
		return nil, fmt.Errorf("vdp: transcript claims %d coin messages", nCoin)
	}
	for i := uint32(0); i < nCoin && r.err == nil; i++ {
		raw := r.lpBytes()
		if r.err != nil {
			break
		}
		msg, err := p.DecodeCoinCommitMsg(raw)
		if err != nil {
			return nil, err
		}
		sp.coinMsgs = append(sp.coinMsgs, msg)
	}

	nMorra := r.u32()
	if r.err == nil && nMorra > maxWireDim {
		return nil, fmt.Errorf("vdp: transcript claims %d morra records", nMorra)
	}
	for i := uint32(0); i < nMorra && r.err == nil; i++ {
		raw := r.lpBytes()
		if r.err != nil {
			break
		}
		rec, err := p.DecodeMorraRecord(raw)
		if err != nil {
			return nil, err
		}
		sp.morra = append(sp.morra, rec)
	}

	nOut := r.u32()
	if r.err == nil && nOut > maxWireDim {
		return nil, fmt.Errorf("vdp: transcript claims %d prover outputs", nOut)
	}
	for i := uint32(0); i < nOut && r.err == nil; i++ {
		raw := r.lpBytes()
		if r.err != nil {
			break
		}
		out, err := p.DecodeProverOutput(raw)
		if err != nil {
			return nil, err
		}
		sp.outputs = append(sp.outputs, out)
	}

	if r.u32() == 1 && r.err == nil {
		m := r.u32()
		if r.err == nil && m > maxWireDim {
			return nil, fmt.Errorf("vdp: release claims %d bins", m)
		}
		rel := &Release{Stddev: stddev(p.cfg.Provers, p.nb)}
		mean := p.NoiseMean()
		for j := uint32(0); j < m && r.err == nil; j++ {
			hi := r.u32()
			lo := r.u32()
			if r.err != nil {
				break
			}
			raw := int64(uint64(hi)<<32 | uint64(lo))
			rel.Raw = append(rel.Raw, raw)
			rel.Estimate = append(rel.Estimate, float64(raw)-mean)
		}
		sp.release = rel
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return sp, nil
}

// digest reproduces TranscriptDigest from the shallow parse: the client
// section is hashed from its raw slices (each equals EncodeClientPublic of
// the decoded client — the encodings are canonical), the rest from the
// decoded components.
func (sp *splitSeal) digest(pub *Public) []byte {
	h := sha256.New()
	writeU32(h, uint32(len(sp.clientRaw)))
	for _, raw := range sp.clientRaw {
		chunk(h, raw)
	}
	writeU32(h, uint32(len(sp.coinMsgs)))
	for _, msg := range sp.coinMsgs {
		digestCoinMsg(h, pub, msg)
	}
	writeU32(h, uint32(len(sp.morra)))
	for _, rec := range sp.morra {
		digestMorra(h, pub, rec)
	}
	writeU32(h, uint32(len(sp.outputs)))
	for _, out := range sp.outputs {
		chunk(h, pub.EncodeProverOutput(out))
	}
	if sp.release != nil {
		writeU32(h, uint32(len(sp.release.Raw)))
		for _, raw := range sp.release.Raw {
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], uint64(raw))
			h.Write(b[:])
		}
	}
	return h.Sum(nil)
}

// transcriptDigestFromBytes computes TranscriptDigest directly from a
// sealed transcript's encoding, decoding only the O(M·nb·K) prover tail.
// Snapshot validation and replay use it so pinning an epoch's digest never
// costs a full client decode.
func transcriptDigestFromBytes(pub *Public, sealBytes []byte) ([]byte, error) {
	sp, err := pub.splitSealedTranscript(sealBytes)
	if err != nil {
		return nil, err
	}
	return sp.digest(pub), nil
}
