package vdp

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"

	"repro/internal/store"
)

// Durable sharded bulletin board: the ShardedSession's integration with
// store.SegmentedLog.
//
// Each shard writes its ordinary single-session record stream
// (submission/verdict/seal/reset — see store.go) to its own segment, so one
// shard's fsyncs never serialize another shard's Submits. The manifest binds
// the segments together: at creation the store records the fixed shard
// count, and at every Finalize the session appends a merged-seal record
// holding MergedTranscriptDigest over the K segment seals. An epoch is a
// *merged* epoch — one auditable unit — exactly when that record exists and
// matches the digests recomputed from the segments.

// RecordMergedSeal is the manifest record kind a ShardedSession appends at
// Finalize: payload = shard count + MergedTranscriptDigest of the epoch's
// per-shard transcripts, in shard order. It extends the record-kind
// namespace of store.go; segment logs never carry it.
const RecordMergedSeal uint8 = 7

// encodeMergedSeal serializes a merged-seal manifest record body.
func encodeMergedSeal(shards int, digest []byte) []byte {
	var w wireWriter
	w.version()
	w.u32(uint32(shards))
	w.lpBytes(digest)
	return w.b
}

// decodeMergedSeal parses a merged-seal manifest record body.
func decodeMergedSeal(b []byte) (shards int, digest []byte, err error) {
	r := wireReader{b: b}
	r.version()
	shards = int(r.u32())
	digest = r.lpBytes()
	if err := r.finish(); err != nil {
		return 0, nil, err
	}
	if len(digest) != sha256.Size {
		return 0, nil, fmt.Errorf("vdp: merged seal carries a %d-byte digest, want %d", len(digest), sha256.Size)
	}
	return shards, digest, nil
}

// appendMergedSeal records a finalized merged epoch in the manifest.
func appendMergedSeal(seg *store.SegmentedLog, epoch, shards int, digest []byte) error {
	err := seg.Manifest().Append(&store.Record{Kind: RecordMergedSeal, Epoch: uint32(epoch), Payload: encodeMergedSeal(shards, digest)})
	if err != nil {
		return fmt.Errorf("vdp: manifest append: %w", err)
	}
	return nil
}

// readMergedSeals replays the manifest into epoch -> merged digest,
// enforcing the manifest grammar: the store's own records are skipped, every
// merged seal must carry the directory's shard count, no epoch may be sealed
// twice, and a kind no ShardedSession writes is rejected outright.
func readMergedSeals(seg *store.SegmentedLog) (map[int][]byte, error) {
	out := make(map[int][]byte)
	i := -1
	err := seg.Manifest().Replay(func(rec *store.Record) error {
		i++
		if rec.Kind >= store.KindSegmentedInit {
			return nil // store-reserved bookkeeping
		}
		if rec.Kind != RecordMergedSeal {
			return fmt.Errorf("vdp: manifest record %d has unknown kind %d", i, rec.Kind)
		}
		shards, digest, err := decodeMergedSeal(rec.Payload)
		if err != nil {
			return fmt.Errorf("vdp: manifest record %d: %w", i, err)
		}
		if shards != seg.Shards() {
			return fmt.Errorf("vdp: manifest record %d claims %d shards, directory holds %d", i, shards, seg.Shards())
		}
		epoch := int(rec.Epoch)
		if _, dup := out[epoch]; dup {
			return fmt.Errorf("vdp: manifest seals epoch %d twice", epoch)
		}
		out[epoch] = digest
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ResumeShardedSession reconstructs a sharded session from its segmented
// board log after a restart. Every shard's segment is replayed and resumed
// exactly as ResumeSession would (same roster, same board order, lost
// verdicts re-verified), and the shards are then reconciled into one
// session:
//
//   - A crash mid-Reset leaves some shards an epoch ahead; the laggards are
//     rolled forward (their Reset is completed), so all shards agree on the
//     current epoch again.
//   - A crash mid-Finalize leaves some shards sealed and others open; the
//     session resumes open, and its Finalize reuses the sealed shards'
//     transcripts while finalizing the rest — the merged digest comes out
//     identical to the uninterrupted run's (given the same seed).
//   - A crash after every shard sealed but before the manifest's merged-seal
//     record landed is healed here: the digest is recomputed from the
//     segment seals and the missing record is appended. A manifest record
//     that *disagrees* with the recomputed digest is tampering and refuses
//     to resume.
//
// opts.Segmented must be the replayed segmented log; it receives all further
// records. opts.Rand must carry the original root seed for deterministic
// reproduction, exactly as with ResumeSession.
func ResumeShardedSession(ctx context.Context, pub *Public, opts SessionOptions) (*ShardedSession, error) {
	seg := opts.Segmented
	if seg == nil {
		return nil, fmt.Errorf("%w: ResumeShardedSession needs SessionOptions.Segmented", ErrBadConfig)
	}
	if opts.Store != nil {
		return nil, fmt.Errorf("%w: a sharded session stores its board in SessionOptions.Segmented, not Store", ErrBadConfig)
	}
	shards, err := resolveShardCount(opts)
	if err != nil {
		return nil, err
	}
	root, err := newRandSource(opts.Rand)
	if err != nil {
		return nil, err
	}
	ss := &ShardedSession{pub: pub, opts: opts, root: root, resumed: true}
	per := perShardWorkers(opts.Parallelism, shards)
	maxEpoch := 0
	for i := 0; i < shards; i++ {
		so := subSessionOptions(opts, per)
		so.Store = seg.Board(i)
		s, err := resumeSessionFromSource(ctx, pub, so, root.forkShard(i, shards))
		if err != nil {
			return nil, fmt.Errorf("vdp: resuming shard %d: %w", i, err)
		}
		ss.shards = append(ss.shards, s)
		if s.Epoch() > maxEpoch {
			maxEpoch = s.Epoch()
		}
	}
	// Complete any Reset a crash interrupted: every shard must sit at the
	// same epoch before the session takes new submissions.
	for i, s := range ss.shards {
		for s.Epoch() < maxEpoch {
			if err := s.Reset(); err != nil {
				return nil, fmt.Errorf("vdp: rolling shard %d forward to epoch %d: %w", i, maxEpoch, err)
			}
		}
	}
	ss.epoch = maxEpoch

	seals, err := readMergedSeals(seg)
	if err != nil {
		return nil, err
	}
	for epoch := range seals {
		if epoch > maxEpoch {
			return nil, fmt.Errorf("vdp: manifest seals epoch %d but the segments have only reached epoch %d", epoch, maxEpoch)
		}
	}
	allSealed := true
	for _, s := range ss.shards {
		if !s.Finalized() {
			allSealed = false
			break
		}
	}
	if allSealed {
		ts := make([]*Transcript, shards)
		for i, s := range ss.shards {
			if ts[i] = s.SealedTranscript(); ts[i] == nil {
				return nil, fmt.Errorf("%w: shard %d is sealed but its transcript is not recoverable", ErrBadConfig, i)
			}
		}
		digest := MergedTranscriptDigest(pub, ts)
		if want, ok := seals[maxEpoch]; ok {
			if !bytes.Equal(want, digest) {
				return nil, fmt.Errorf("vdp: manifest merged seal for epoch %d disagrees with the segment seals", maxEpoch)
			}
		} else if err := appendMergedSeal(seg, maxEpoch, shards, digest); err != nil {
			return nil, err
		}
		ss.state = sessionFinalized
	} else if _, ok := seals[maxEpoch]; ok {
		// The manifest claims the current epoch merged, yet at least one
		// segment holds no seal for it: a segment was truncated or swapped
		// after the fact. Refuse to build on doctored evidence.
		return nil, fmt.Errorf("vdp: manifest seals epoch %d but not every shard segment is sealed", maxEpoch)
	}
	return ss, nil
}

// AuditSegmentedLog audits a merged (sharded) epoch offline, from the
// segmented board log alone: each shard's segment is audited exactly as
// AuditLog audits a single board log — sealed transcript fully re-verified
// and cross-checked against the segment's own per-arrival records — then the
// shard map is checked (every client on the shard ShardOf assigns it, no
// client on two shards) and the merged digest recomputed from the K segment
// seals must equal the manifest's merged-seal record. epoch < 0 selects the
// latest merged-sealed epoch. workers follows the AuditParallel convention.
func AuditSegmentedLog(ctx context.Context, pub *Public, seg *store.SegmentedLog, epoch, workers int) error {
	seals, err := readMergedSeals(seg)
	if err != nil {
		return err
	}
	if epoch < 0 {
		epoch = -1
		for e := range seals {
			if e > epoch {
				epoch = e
			}
		}
		if epoch < 0 {
			return fmt.Errorf("%w: manifest holds no merged-sealed epoch", ErrAuditFail)
		}
	}
	want, ok := seals[epoch]
	if !ok {
		return fmt.Errorf("%w: manifest holds no merged seal for epoch %d", ErrAuditFail, epoch)
	}
	ts := make([]*Transcript, seg.Shards())
	for i := range ts {
		t, err := auditLogEpoch(ctx, pub, seg.Segment(i), epoch, workers)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		ts[i] = t
	}
	if err := checkShardAssignment(ts); err != nil {
		return err
	}
	if got := MergedTranscriptDigest(pub, ts); !bytes.Equal(got, want) {
		return fmt.Errorf("%w: epoch %d merged digest disagrees with the manifest's merged seal", ErrAuditFail, epoch)
	}
	return nil
}
