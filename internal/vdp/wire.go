package vdp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/field"
	"repro/internal/pedersen"
	"repro/internal/sigma"
)

// Wire encodings for the client-facing messages, so submissions can cross a
// real network (cmd/vdpserver, cmd/vdpclient) and be archived verbatim on a
// bulletin board. Encodings are fixed-width concatenations of canonical
// group-element and scalar encodings with explicit counts; decoding
// validates every component (group membership, canonical scalars), so a
// malformed submission fails to parse rather than corrupting the verifier.
//
// Every encoding starts with a one-byte format version. Decoders reject
// unknown versions outright, so the session protocol can evolve its message
// layout without old and new peers silently misparsing each other's bytes.

// WireVersion is the current wire-format version, the leading byte of every
// encoding produced by this package.
const WireVersion = 1

type wireWriter struct{ b []byte }

// version emits the leading format-version byte.
func (w *wireWriter) version() { w.b = append(w.b, WireVersion) }

func (w *wireWriter) u32(v uint32) {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	w.b = append(w.b, tmp[:]...)
}

func (w *wireWriter) bytes(b []byte) { w.b = append(w.b, b...) }

// lpMark reserves a u32 length prefix and returns a patch mark; lpPatch
// backfills it with the number of bytes written since. Together they let a
// composite encoder emit a length-prefixed sub-encoding directly into the
// enclosing buffer instead of building it separately and copying — the
// allocation the batch submission path (SubmitBatch, EncodeSubmissionBatch)
// cannot afford once per client per frame.
func (w *wireWriter) lpMark() int {
	w.u32(0)
	return len(w.b)
}

func (w *wireWriter) lpPatch(mark int) {
	binary.BigEndian.PutUint32(w.b[mark-4:mark], uint32(len(w.b)-mark))
}

type wireReader struct {
	b   []byte
	err error
}

// version consumes and checks the leading format-version byte.
func (r *wireReader) version() {
	if r.err != nil {
		return
	}
	if len(r.b) < 1 {
		r.err = errors.New("vdp: truncated encoding")
		return
	}
	v := r.b[0]
	r.b = r.b[1:]
	if v != WireVersion {
		r.err = fmt.Errorf("vdp: unsupported wire format version %d (this build speaks %d)", v, WireVersion)
	}
}

func (r *wireReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.err = errors.New("vdp: truncated encoding")
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[:4])
	r.b = r.b[4:]
	return v
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	// n < 0 guards 32-bit builds, where a hostile uint32 length prefix
	// converted to int can go negative and would otherwise panic the slice.
	if n < 0 || len(r.b) < n {
		r.err = errors.New("vdp: truncated encoding")
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *wireReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("vdp: %d trailing bytes in encoding", len(r.b))
	}
	return nil
}

// maxWireDim bounds decoded counts to keep a hostile encoding from
// allocating unbounded memory.
const maxWireDim = 1 << 20

// EncodeClientPublic serializes a bulletin-board submission.
func (p *Public) EncodeClientPublic(cp *ClientPublic) []byte {
	var w wireWriter
	p.encodeClientPublicInto(&w, cp)
	return w.b
}

// encodeClientPublicInto writes the EncodeClientPublic encoding to an
// existing writer, so composite encoders (submission records, batch frames)
// emit it in place instead of allocating one intermediate buffer per client.
func (p *Public) encodeClientPublicInto(w *wireWriter, cp *ClientPublic) {
	w.version()
	w.u32(uint32(cp.ID))
	w.u32(uint32(len(cp.ShareCommitments)))
	for _, row := range cp.ShareCommitments {
		w.u32(uint32(len(row)))
		for _, c := range row {
			w.bytes(c.Bytes())
		}
	}
	if cp.BitProof != nil {
		w.u32(1)
		w.bytes(cp.BitProof.Encode(p.pp))
	} else {
		w.u32(0)
	}
	if cp.OneHotProof != nil {
		enc := cp.OneHotProof.Encode(p.pp)
		w.u32(uint32(len(enc)))
		w.bytes(enc)
	} else {
		w.u32(0)
	}
}

// DecodeClientPublic parses and validates a bulletin-board submission.
func (p *Public) DecodeClientPublic(b []byte) (*ClientPublic, error) {
	r := wireReader{b: b}
	r.version()
	cp := &ClientPublic{ID: int(r.u32())}
	rows := r.u32()
	if r.err == nil && rows > maxWireDim {
		return nil, fmt.Errorf("vdp: submission claims %d bins", rows)
	}
	elemLen := p.pp.Group().ElementLen()
	for j := uint32(0); j < rows && r.err == nil; j++ {
		cols := r.u32()
		if r.err == nil && cols > maxWireDim {
			return nil, fmt.Errorf("vdp: submission claims %d provers", cols)
		}
		row := make([]*pedersen.Commitment, 0, cols)
		for k := uint32(0); k < cols && r.err == nil; k++ {
			raw := r.take(elemLen)
			if r.err != nil {
				break
			}
			c, err := p.pp.DecodeCommitment(raw)
			if err != nil {
				return nil, fmt.Errorf("vdp: client %d commitment: %w", cp.ID, err)
			}
			row = append(row, c)
		}
		cp.ShareCommitments = append(cp.ShareCommitments, row)
	}
	if r.u32() == 1 && r.err == nil {
		raw := r.take(sigma.BitProofLen(p.pp))
		if r.err == nil {
			bp, err := sigma.DecodeBitProof(p.pp, raw)
			if err != nil {
				return nil, err
			}
			cp.BitProof = bp
		}
	}
	ohLen := r.u32()
	if ohLen > 0 && r.err == nil {
		if ohLen > maxWireDim*8 {
			return nil, fmt.Errorf("vdp: one-hot proof claims %d bytes", ohLen)
		}
		raw := r.take(int(ohLen))
		if r.err == nil {
			ohp, err := sigma.DecodeOneHotProof(p.pp, raw)
			if err != nil {
				return nil, err
			}
			cp.OneHotProof = ohp
		}
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return cp, nil
}

// EncodeClientPayload serializes a private per-prover payload.
func (p *Public) EncodeClientPayload(pl *ClientPayload) []byte {
	var w wireWriter
	p.encodeClientPayloadInto(&w, pl)
	return w.b
}

// encodeClientPayloadInto is EncodeClientPayload writing to an existing
// writer; see encodeClientPublicInto.
func (p *Public) encodeClientPayloadInto(w *wireWriter, pl *ClientPayload) {
	w.version()
	w.u32(uint32(pl.ClientID))
	w.u32(uint32(pl.Prover))
	w.u32(uint32(len(pl.Openings)))
	for _, o := range pl.Openings {
		w.bytes(o.X.Bytes())
		w.bytes(o.R.Bytes())
	}
}

// DecodeClientPayload parses a private payload.
func (p *Public) DecodeClientPayload(b []byte) (*ClientPayload, error) {
	r := wireReader{b: b}
	r.version()
	pl := &ClientPayload{ClientID: int(r.u32()), Prover: int(r.u32())}
	n := r.u32()
	if r.err == nil && n > maxWireDim {
		return nil, fmt.Errorf("vdp: payload claims %d openings", n)
	}
	f := p.Field()
	w := f.ByteLen()
	for i := uint32(0); i < n && r.err == nil; i++ {
		xRaw := r.take(w)
		rRaw := r.take(w)
		if r.err != nil {
			break
		}
		x, err := f.FromBytes(xRaw)
		if err != nil {
			return nil, fmt.Errorf("vdp: payload opening %d: %w", i, err)
		}
		rr, err := f.FromBytes(rRaw)
		if err != nil {
			return nil, fmt.Errorf("vdp: payload opening %d: %w", i, err)
		}
		pl.Openings = append(pl.Openings, &pedersen.Opening{X: x, R: rr})
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return pl, nil
}

// EncodeProverOutput serializes a prover's (y, z) message.
func (p *Public) EncodeProverOutput(out *ProverOutput) []byte {
	var w wireWriter
	w.version()
	w.u32(uint32(out.Prover))
	w.u32(uint32(len(out.Y)))
	for j := range out.Y {
		w.bytes(out.Y[j].Bytes())
		w.bytes(out.Z[j].Bytes())
	}
	return w.b
}

// DecodeProverOutput parses a prover output message.
func (p *Public) DecodeProverOutput(b []byte) (*ProverOutput, error) {
	r := wireReader{b: b}
	r.version()
	out := &ProverOutput{Prover: int(r.u32())}
	n := r.u32()
	if r.err == nil && n > maxWireDim {
		return nil, fmt.Errorf("vdp: output claims %d bins", n)
	}
	f := p.Field()
	w := f.ByteLen()
	var yz []*field.Element
	for i := uint32(0); i < 2*n && r.err == nil; i++ {
		raw := r.take(w)
		if r.err != nil {
			break
		}
		e, err := f.FromBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("vdp: output element %d: %w", i, err)
		}
		yz = append(yz, e)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	for i := 0; i < int(n); i++ {
		out.Y = append(out.Y, yz[2*i])
		out.Z = append(out.Z, yz[2*i+1])
	}
	return out, nil
}
