package vdp

import (
	"context"
	"fmt"
	"io"

	"repro/internal/field"
	"repro/internal/pedersen"
	"repro/internal/share"
	"repro/internal/sigma"
)

// ClientPublic is the part of a client submission that goes on the public
// bulletin board: the commitment matrix to all shares and the legality
// proof over the derived per-bin commitments (Line 2 of Figure 2). Everyone
// — verifier, provers, outside auditors — sees it.
type ClientPublic struct {
	ID int
	// ShareCommitments[j][k] commits to the k'th share of bin j.
	ShareCommitments [][]*pedersen.Commitment
	// BitProof proves the derived commitment opens to a bit (M = 1).
	BitProof *sigma.BitProof
	// OneHotProof proves the derived commitments form a one-hot vector
	// (M ≥ 2).
	OneHotProof *sigma.OneHotProof
}

// ClientPayload is the private message a client sends to one prover: the
// openings of that prover's column of the commitment matrix — i.e. the
// shares themselves with their commitment randomness.
type ClientPayload struct {
	ClientID int
	Prover   int
	// Openings[j] opens ShareCommitments[j][Prover].
	Openings []*pedersen.Opening
}

// ClientSubmission bundles the public and private parts produced by a
// client.
type ClientSubmission struct {
	Public   *ClientPublic
	Payloads []*ClientPayload // one per prover
}

// NewClientSubmission prepares client clientID's submission for input
// `choice`. For M = 1 the input is a bit: choice 0 or 1 (the value itself).
// For M ≥ 2 the input is a one-hot vector with a 1 at index choice
// ∈ [0, M).
func (p *Public) NewClientSubmission(clientID, choice int, rnd io.Reader) (*ClientSubmission, error) {
	f := p.Field()
	m := p.cfg.Bins
	k := p.cfg.Provers

	vec := make([]*field.Element, m)
	if m == 1 {
		if choice != 0 && choice != 1 {
			return nil, fmt.Errorf("%w: counting-query input must be 0 or 1, got %d", ErrClientReject, choice)
		}
		vec[0] = f.FromInt64(int64(choice))
	} else {
		if choice < 0 || choice >= m {
			return nil, fmt.Errorf("%w: histogram choice %d out of [0,%d)", ErrClientReject, choice, m)
		}
		for j := range vec {
			vec[j] = f.Zero()
		}
		vec[choice] = f.One()
	}

	pub := &ClientPublic{ID: clientID, ShareCommitments: make([][]*pedersen.Commitment, m)}
	payloads := make([]*ClientPayload, k)
	for pk := 0; pk < k; pk++ {
		payloads[pk] = &ClientPayload{ClientID: clientID, Prover: pk, Openings: make([]*pedersen.Opening, m)}
	}

	// Derived per-bin commitments c_j = Π_k c_{j,k} = Com(x_j, Σ_k r_{j,k})
	// and their openings, which feed the legality proof.
	derived := make([]*pedersen.Commitment, m)
	derivedOpen := make([]*pedersen.Opening, m)

	for j := 0; j < m; j++ {
		shares, err := share.Additive(vec[j], k, rnd)
		if err != nil {
			return nil, err
		}
		pub.ShareCommitments[j] = make([]*pedersen.Commitment, k)
		sumR := f.Zero()
		for pk := 0; pk < k; pk++ {
			c, r, err := p.pp.Commit(shares[pk], rnd)
			if err != nil {
				return nil, err
			}
			pub.ShareCommitments[j][pk] = c
			payloads[pk].Openings[j] = &pedersen.Opening{X: shares[pk], R: r}
			sumR = sumR.Add(r)
		}
		derived[j] = pedersen.Sum(p.pp, pub.ShareCommitments[j]...)
		derivedOpen[j] = &pedersen.Opening{X: vec[j], R: sumR}
	}

	ctx := p.clientContext(clientID)
	if m == 1 {
		bp, err := sigma.ProveBit(p.pp, derived[0], derivedOpen[0].X, derivedOpen[0].R, ctx, rnd)
		if err != nil {
			return nil, err
		}
		pub.BitProof = bp
	} else {
		ohp, err := sigma.ProveOneHot(p.pp, derived, derivedOpen, ctx, rnd)
		if err != nil {
			return nil, err
		}
		pub.OneHotProof = ohp
	}
	return &ClientSubmission{Public: pub, Payloads: payloads}, nil
}

// derivedCommitments recomputes c_j = Π_k c_{j,k} from a public submission.
func (p *Public) derivedCommitments(pub *ClientPublic) ([]*pedersen.Commitment, error) {
	if len(pub.ShareCommitments) != p.cfg.Bins {
		return nil, fmt.Errorf("%w: client %d committed %d bins, want %d",
			ErrClientReject, pub.ID, len(pub.ShareCommitments), p.cfg.Bins)
	}
	out := make([]*pedersen.Commitment, p.cfg.Bins)
	for j, row := range pub.ShareCommitments {
		if len(row) != p.cfg.Provers {
			return nil, fmt.Errorf("%w: client %d bin %d has %d share commitments, want %d",
				ErrClientReject, pub.ID, j, len(row), p.cfg.Provers)
		}
		out[j] = pedersen.Sum(p.pp, row...)
	}
	return out, nil
}

// VerifyClient runs the public legality check of Line 3 of Figure 2 against
// a client's bulletin-board submission. A nil return marks the client valid;
// an ErrClientReject-wrapped error gives the publicly attributable reason.
// Because the check uses only public data, every party reaches the same
// verdict — this is the public record that defeats the Figure 1 attacks
// (a prover cannot silently exclude a client that passed, nor include one
// that failed).
func (p *Public) VerifyClient(pub *ClientPublic) error {
	derived, err := p.derivedCommitments(pub)
	if err != nil {
		return err
	}
	ctx := p.clientContext(pub.ID)
	if p.cfg.Bins == 1 {
		if pub.BitProof == nil {
			return fmt.Errorf("%w: client %d missing bit proof", ErrClientReject, pub.ID)
		}
		if err := sigma.VerifyBit(p.pp, derived[0], pub.BitProof, ctx); err != nil {
			return fmt.Errorf("%w: client %d: %v", ErrClientReject, pub.ID, err)
		}
		return nil
	}
	if pub.OneHotProof == nil {
		return fmt.Errorf("%w: client %d missing one-hot proof", ErrClientReject, pub.ID)
	}
	if err := sigma.VerifyOneHot(p.pp, derived, pub.OneHotProof, ctx); err != nil {
		return fmt.Errorf("%w: client %d: %v", ErrClientReject, pub.ID, err)
	}
	return nil
}

// FilterValidClients applies VerifyClient to a batch and partitions it into
// the accepted set and a map of rejection reasons. The accepted set is the
// public roster of inputs the protocol will aggregate; from Line 3 on, "the
// protocol only uses inputs from validated clients".
//
// This is the sequential reference path; the execution engine and the
// parallel verifier use filterValidClientsBatch, which reaches the same
// verdicts with one random-linear-combination check over the whole board.
func (p *Public) FilterValidClients(pubs []*ClientPublic) (valid []*ClientPublic, rejected map[int]error) {
	rejected = make(map[int]error)
	for _, c := range pubs {
		if err := p.VerifyClient(c); err != nil {
			rejected[c.ID] = err
			continue
		}
		valid = append(valid, c)
	}
	return valid, rejected
}

// filterValidClientsBatch is FilterValidClients with batched Σ-OR
// verification: the derived-commitment recomputation fans out over the
// worker pool, every structurally sound client's legality proof folds into
// one BitBatch, and a single (parallel) multi-exponentiation decides the
// honest case. Only when that combined check fails does it fall back to
// per-client verification to attribute blame — so a single forged proof
// hidden among many valid ones is still pinned on exactly its author, at
// the price of one extra sequential pass. Verdicts and rejection reasons
// are identical to FilterValidClients regardless of worker count. A
// cancelled ctx aborts with ctx.Err() before any verdict is published, so
// cancellation can never be mistaken for a rejection.
func (p *Public) filterValidClientsBatch(ctx context.Context, pubs []*ClientPublic, workers int) (valid []*ClientPublic, rejected map[int]error, err error) {
	rejected = make(map[int]error)
	if len(pubs) == 0 {
		return nil, rejected, ctxErr(ctx)
	}

	// Pass 1 (parallel, pure): recompute derived per-bin commitments and
	// check proof presence. Structural failures are attributable on the
	// spot and never enter the batch.
	derived := make([][]*pedersen.Commitment, len(pubs))
	structural := make([]error, len(pubs))
	ferr := forEach(ctx, workers, len(pubs), func(i int) error {
		c := pubs[i]
		d, err := p.derivedCommitments(c)
		if err != nil {
			structural[i] = err
			return nil
		}
		if p.cfg.Bins == 1 && c.BitProof == nil {
			structural[i] = fmt.Errorf("%w: client %d missing bit proof", ErrClientReject, c.ID)
			return nil
		}
		if p.cfg.Bins > 1 && c.OneHotProof == nil {
			structural[i] = fmt.Errorf("%w: client %d missing one-hot proof", ErrClientReject, c.ID)
			return nil
		}
		derived[i] = d
		return nil
	})
	if ferr != nil {
		return nil, nil, ferr
	}

	// Pass 2 (sequential, scalar-only): fold every remaining proof into the
	// batch. Fiat-Shamir recomputation rejects malformed proofs here with
	// the same verdict the per-client verifier would reach.
	batch := sigma.NewBitBatch(p.pp, nil)
	inBatch := make([]bool, len(pubs))
	for i, c := range pubs {
		if structural[i] != nil {
			rejected[c.ID] = structural[i]
			continue
		}
		var err error
		if p.cfg.Bins == 1 {
			err = batch.Add(derived[i][0], c.BitProof, p.clientContext(c.ID))
		} else {
			err = batch.AddOneHot(derived[i], c.OneHotProof, p.clientContext(c.ID))
		}
		if err != nil {
			rejected[c.ID] = fmt.Errorf("%w: client %d: %v", ErrClientReject, c.ID, err)
			continue
		}
		inBatch[i] = true
	}

	// Pass 3: one combined check. On failure, re-verify the batch members
	// individually (in parallel — verdicts are independent) to name every
	// cheater; the honest majority is still accepted.
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}
	if batch.Check(workers) != nil {
		verdicts := make([]error, len(pubs))
		ferr := forEach(ctx, workers, len(pubs), func(i int) error {
			if inBatch[i] {
				verdicts[i] = p.VerifyClient(pubs[i])
			}
			return nil
		})
		if ferr != nil {
			return nil, nil, ferr
		}
		for i, c := range pubs {
			if inBatch[i] && verdicts[i] != nil {
				rejected[c.ID] = verdicts[i]
				inBatch[i] = false
			}
		}
	}
	for i, c := range pubs {
		if inBatch[i] {
			valid = append(valid, c)
		}
	}
	return valid, rejected, nil
}

// checkPayloadOpenings validates one client's private payload for prover
// column `prover` against the public commitment matrix: identity fields,
// bin count, and every share opening. It is the pure core of
// Prover.checkPayload, stateless so a Session can run it eagerly — before
// any Prover exists — and fan the K columns out across a worker pool.
func (p *Public) checkPayloadOpenings(pub *ClientPublic, payload *ClientPayload, prover int) error {
	if payload == nil || payload.ClientID != pub.ID {
		return fmt.Errorf("%w: payload/public ID mismatch for client %d", ErrClientReject, pub.ID)
	}
	if payload.Prover != prover {
		return fmt.Errorf("%w: payload for prover %d delivered to prover %d", ErrClientReject, payload.Prover, prover)
	}
	if len(payload.Openings) != p.cfg.Bins {
		return fmt.Errorf("%w: client %d payload has %d bins, want %d",
			ErrClientReject, pub.ID, len(payload.Openings), p.cfg.Bins)
	}
	// The openings must match the public commitments in this prover's
	// column; otherwise the client equivocated between board and payload.
	for j := 0; j < p.cfg.Bins; j++ {
		c := pub.ShareCommitments[j][prover]
		o := payload.Openings[j]
		if o == nil || !p.pp.Verify(c, o.X, o.R) {
			return fmt.Errorf("%w: client %d share opening for bin %d does not match its public commitment",
				ErrClientReject, pub.ID, j)
		}
	}
	return nil
}
