package vdp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/store"
)

// TestShardedMatchesSessionDigest is the sharding acceptance criterion.
// Part 1: with Shards = 1 the merged transcript digest is byte-identical to
// a plain Session's under the same seed. Part 2: a sharded epoch that
// crashes mid-stream and is resumed from its segmented board log finalizes
// to the same merged digest as an uninterrupted run of the same material.
func TestShardedMatchesSessionDigest(t *testing.T) {
	pub := testPublic(t, 1, 1, 6)
	choices := []int{1, 0, 1, 1, 0, 1, 0, 1}

	// Reference: the unsharded streaming session.
	ref, err := NewSession(pub, SessionOptions{Rand: testSeed(5), Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range choices {
		sub, err := ref.NewClientSubmission(i, c)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Submit(context.Background(), sub); err != nil {
			t.Fatal(err)
		}
	}
	refRes, err := ref.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := TranscriptDigest(pub, refRes.Transcript)

	// Part 1: Shards = 1 collapses to the plain session, byte for byte.
	ss, err := NewShardedSession(pub, SessionOptions{Rand: testSeed(5), Shards: 1, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range choices {
		sub, err := ss.NewClientSubmission(i, c)
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Submit(context.Background(), sub); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	res, err := ss.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 1 {
		t.Fatalf("merged result covers %d shards, want 1", len(res.Shards))
	}
	if !bytes.Equal(res.Digest, want) {
		t.Error("Shards=1 merged digest differs from the plain Session's under the same seed")
	}
	if err := AuditMerged(context.Background(), pub, res.Transcripts(), res.Release, 0); err != nil {
		t.Errorf("merged audit: %v", err)
	}

	// Part 2: crash/resume of a sharded epoch reproduces the merged digest.
	const shards = 3
	subs := make([]*ClientSubmission, len(choices))

	runSharded := func(opts SessionOptions, crashAfter int) (*ShardedResult, *ShardedSession) {
		s, err := NewShardedSession(pub, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range choices {
			if subs[i] == nil {
				sub, err := s.NewClientSubmission(i, c)
				if err != nil {
					t.Fatal(err)
				}
				subs[i] = sub
			}
			if err := s.Submit(context.Background(), subs[i]); err != nil {
				t.Fatalf("client %d: %v", i, err)
			}
			if i+1 == crashAfter {
				return nil, s
			}
		}
		out, err := s.Finalize(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out, s
	}

	uninterrupted, _ := runSharded(SessionOptions{Rand: testSeed(9), Shards: shards, Parallelism: 2}, 0)
	if bytes.Equal(uninterrupted.Digest, want) {
		t.Error("multi-shard digest equals single-session digest — shards are not independent instances")
	}

	dir := t.TempDir()
	seg, err := store.OpenSegmentedLog(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = runSharded(SessionOptions{Rand: testSeed(9), Segmented: seg, Parallelism: 2}, 5)
	if err := seg.Close(); err != nil { // the crash
		t.Fatal(err)
	}

	seg2, err := store.OpenSegmentedLog(dir, 0) // adopt the recorded shard count
	if err != nil {
		t.Fatal(err)
	}
	defer seg2.Close()
	if got := seg2.Shards(); got != shards {
		t.Fatalf("reopened segmented log has %d shards, want %d", got, shards)
	}
	resumed, err := ResumeShardedSession(context.Background(), pub, SessionOptions{Rand: testSeed(9), Segmented: seg2, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed() {
		t.Error("resumed session does not report Resumed")
	}
	if got := resumed.Submitted(); got != 5 {
		t.Fatalf("resumed session recovered %d submissions, want 5", got)
	}
	for i := 5; i < len(choices); i++ {
		if err := resumed.Submit(context.Background(), subs[i]); err != nil {
			t.Fatalf("post-resume client %d: %v", i, err)
		}
	}
	resumedRes, err := resumed.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedRes.Digest, uninterrupted.Digest) {
		t.Error("crash/resume of a sharded epoch changed the merged transcript digest")
	}
	if err := AuditMerged(context.Background(), pub, resumedRes.Transcripts(), resumedRes.Release, 0); err != nil {
		t.Errorf("merged audit of recovered epoch: %v", err)
	}
	if err := AuditSegmentedLog(context.Background(), pub, seg2, -1, 0); err != nil {
		t.Errorf("segmented offline audit: %v", err)
	}
}

// TestShardedRouting: every submission lands on the shard ShardOf assigns
// it, the per-shard counters sum to the whole board, and rejections merge
// across shards.
func TestShardedRouting(t *testing.T) {
	pub := testPublic(t, 1, 1, 4)
	const shards, n = 4, 16
	ss, err := NewShardedSession(pub, SessionOptions{Shards: shards, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	perShard := make([]int, shards)
	for i := 0; i < n; i++ {
		sub, err := ss.NewClientSubmission(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if i == 7 { // one forged proof in the flood
			other, err := pub.NewClientSubmission(99, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			sub.Public.BitProof = other.Public.BitProof
		}
		err = ss.Submit(context.Background(), sub)
		if i == 7 {
			if !errors.Is(err, ErrClientReject) {
				t.Fatalf("forged client verdict: %v", err)
			}
		} else if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		perShard[ShardOf(i, shards)]++
	}
	spread := 0
	for i := 0; i < shards; i++ {
		if got := ss.Shard(i).Submitted(); got != perShard[i] {
			t.Errorf("shard %d holds %d submissions, hash assigns %d", i, got, perShard[i])
		}
		if perShard[i] > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("hash routed every client to %d shard(s); want a spread", spread)
	}
	if got := ss.Submitted(); got != n {
		t.Errorf("Submitted() = %d, want %d", got, n)
	}
	if got := ss.Accepted(); got != n-1 {
		t.Errorf("Accepted() = %d, want %d", got, n-1)
	}
	rej := ss.Rejected()
	if len(rej) != 1 || !errors.Is(rej[7], ErrClientReject) {
		t.Errorf("merged rejections: %v", rej)
	}
	res, err := ss.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RejectedClients) != 1 || !errors.Is(res.RejectedClients[7], ErrClientReject) {
		t.Errorf("finalized rejections: %v", res.RejectedClients)
	}
	// The combined release covers the n-1 honest ones: raw within the noise
	// envelope [n-1, n-1 + shards·K·nb].
	if res.Release.Raw[0] < n-1 || res.Release.Raw[0] > n-1+shards*4 {
		t.Errorf("merged raw %d outside honest envelope", res.Release.Raw[0])
	}
	if err := AuditMerged(context.Background(), pub, res.Transcripts(), res.Release, 0); err != nil {
		t.Errorf("merged audit: %v", err)
	}
}

// TestShardedConcurrentSubmit floods a sharded session from many goroutines
// (run under -race in CI): shard routing must stay correct and the merged
// epoch must audit.
func TestShardedConcurrentSubmit(t *testing.T) {
	pub := testPublic(t, 1, 1, 4)
	const shards, n = 4, 24
	subs := make([]*ClientSubmission, n)
	err := forEach(nil, 4, n, func(i int) error {
		sub, err := pub.NewClientSubmission(i, 1, nil)
		if err != nil {
			return err
		}
		subs[i] = sub
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewShardedSession(pub, SessionOptions{Shards: shards, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	verdicts := make([]error, n)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 8 {
				verdicts[i] = ss.Submit(context.Background(), subs[i])
			}
		}(g)
	}
	wg.Wait()
	for i, v := range verdicts {
		if v != nil {
			t.Errorf("client %d: %v", i, v)
		}
	}
	res, err := ss.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Release.Raw[0] < n || res.Release.Raw[0] > n+shards*4 {
		t.Errorf("merged raw %d outside honest envelope", res.Release.Raw[0])
	}
	if err := AuditMerged(context.Background(), pub, res.Transcripts(), res.Release, 0); err != nil {
		t.Errorf("merged audit: %v", err)
	}
}

// TestShardedCrashMidFinalize: a crash that seals some shards but not
// others resumes open, reuses the sealed shards' transcripts, and still
// produces the uninterrupted merged digest.
func TestShardedCrashMidFinalize(t *testing.T) {
	pub := testPublic(t, 1, 1, 4)
	const shards, n = 3, 9
	choices := []int{1, 0, 1, 1, 1, 0, 0, 1, 1}

	subs := make([]*ClientSubmission, n)
	run := func(opts SessionOptions) *ShardedSession {
		s, err := NewShardedSession(pub, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if subs[i] == nil {
				sub, err := s.NewClientSubmission(i, choices[i])
				if err != nil {
					t.Fatal(err)
				}
				subs[i] = sub
			}
			if err := s.Submit(context.Background(), subs[i]); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}

	refSession := run(SessionOptions{Rand: testSeed(21), Shards: shards})
	ref, err := refSession.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	seg, err := store.OpenSegmentedLog(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	ss := run(SessionOptions{Rand: testSeed(21), Segmented: seg})
	// The "crash": exactly one shard finalizes (seals its segment) before
	// the process dies.
	if _, err := ss.Shard(1).Finalize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}

	seg2, err := store.OpenSegmentedLog(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer seg2.Close()
	resumed, err := ResumeShardedSession(context.Background(), pub, SessionOptions{Rand: testSeed(21), Segmented: seg2})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Finalized() {
		t.Fatal("partially sealed epoch resumed as finalized")
	}
	res, err := resumed.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Digest, ref.Digest) {
		t.Error("crash mid-finalize changed the merged digest")
	}
	if err := AuditSegmentedLog(context.Background(), pub, seg2, -1, 0); err != nil {
		t.Errorf("segmented audit after mid-finalize recovery: %v", err)
	}
}

// TestShardedManifestHeal: a crash after every shard sealed but before the
// manifest's merged-seal record landed resumes finalized, recomputes the
// merged digest from the segment seals, and heals the manifest so the
// offline auditor accepts the epoch.
func TestShardedManifestHeal(t *testing.T) {
	pub := testPublic(t, 1, 1, 4)
	const shards = 2
	dir := t.TempDir()
	seg, err := store.OpenSegmentedLog(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewShardedSession(pub, SessionOptions{Rand: testSeed(33), Segmented: seg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		sub, err := ss.NewClientSubmission(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Submit(context.Background(), sub); err != nil {
			t.Fatal(err)
		}
	}
	// Seal every shard by hand — the front door never gets to write the
	// manifest record, exactly like a crash between the last segment seal
	// and the manifest append.
	for i := 0; i < shards; i++ {
		if _, err := ss.Shard(i).Finalize(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}

	seg2, err := store.OpenSegmentedLog(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer seg2.Close()
	resumed, err := ResumeShardedSession(context.Background(), pub, SessionOptions{Rand: testSeed(33), Segmented: seg2})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Finalized() {
		t.Fatal("fully sealed epoch did not resume finalized")
	}
	if err := AuditSegmentedLog(context.Background(), pub, seg2, -1, 0); err != nil {
		t.Errorf("audit after manifest heal: %v", err)
	}
	// The next epoch opens cleanly on top of the healed manifest.
	if err := resumed.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := resumed.Epoch(); got != 1 {
		t.Fatalf("epoch after reset = %d, want 1", got)
	}
	sub, err := resumed.NewClientSubmission(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Submit(context.Background(), sub); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Finalize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := AuditSegmentedLog(context.Background(), pub, seg2, 1, 0); err != nil {
		t.Errorf("audit of the post-heal epoch: %v", err)
	}
}

// TestShardedAuditTamper: the merged auditors reject shard-map violations
// and doctored segments.
func TestShardedAuditTamper(t *testing.T) {
	pub := testPublic(t, 1, 1, 4)
	const shards = 2

	t.Run("client-on-wrong-shard", func(t *testing.T) {
		ss, err := NewShardedSession(pub, SessionOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		sub, err := pub.NewClientSubmission(3, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Bypass the router: a corrupt front door posts the client on the
		// other shard.
		wrong := 1 - ShardOf(3, shards)
		if err := ss.Shard(wrong).Submit(context.Background(), sub); err != nil {
			t.Fatal(err)
		}
		res, err := ss.Finalize(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := AuditMerged(context.Background(), pub, res.Transcripts(), res.Release, 0); !errors.Is(err, ErrAuditFail) {
			t.Errorf("wrong-shard client passed the merged audit: %v", err)
		}
	})

	t.Run("client-on-two-shards", func(t *testing.T) {
		ss, err := NewShardedSession(pub, SessionOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		// Find an ID for each shard, then post shard 1's client on both.
		sub0, err := pub.NewClientSubmission(pickIDForShard(0, shards), 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Shard(0).Submit(context.Background(), sub0); err != nil {
			t.Fatal(err)
		}
		dup, err := pub.NewClientSubmission(pickIDForShard(1, shards), 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Shard(1).Submit(context.Background(), dup); err != nil {
			t.Fatal(err)
		}
		if err := ss.Shard(0).Submit(context.Background(), dup); err != nil {
			t.Fatal(err)
		}
		res, err := ss.Finalize(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := AuditMerged(context.Background(), pub, res.Transcripts(), res.Release, 0); !errors.Is(err, ErrAuditFail) {
			t.Errorf("double-posted client passed the merged audit: %v", err)
		}
	})

	t.Run("segment-appended-after-seal", func(t *testing.T) {
		dir := t.TempDir()
		seg, err := store.OpenSegmentedLog(dir, shards)
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		ss, err := NewShardedSession(pub, SessionOptions{Segmented: seg})
		if err != nil {
			t.Fatal(err)
		}
		sub, err := ss.NewClientSubmission(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Submit(context.Background(), sub); err != nil {
			t.Fatal(err)
		}
		if _, err := ss.Finalize(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := AuditSegmentedLog(context.Background(), pub, seg, -1, 0); err != nil {
			t.Fatalf("honest epoch failed audit: %v", err)
		}
		// Tamper: splice a forged submission into a sealed segment.
		forged, err := pub.NewClientSubmission(77, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		shard := ShardOf(77, shards)
		err = seg.Segment(shard).Append(&store.Record{
			Kind: RecordSubmission, Epoch: 0, Payload: pub.EncodeClientSubmission(forged),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := AuditSegmentedLog(context.Background(), pub, seg, -1, 0); !errors.Is(err, ErrAuditFail) {
			t.Errorf("doctored segment passed the audit: %v", err)
		}
	})

	t.Run("manifest-double-seal", func(t *testing.T) {
		dir := t.TempDir()
		seg, err := store.OpenSegmentedLog(dir, shards)
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		ss, err := NewShardedSession(pub, SessionOptions{Segmented: seg})
		if err != nil {
			t.Fatal(err)
		}
		sub, err := ss.NewClientSubmission(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Submit(context.Background(), sub); err != nil {
			t.Fatal(err)
		}
		if _, err := ss.Finalize(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Tamper: a second, contradictory merged seal for the same epoch.
		bogus := make([]byte, 32)
		err = seg.Manifest().Append(&store.Record{Kind: RecordMergedSeal, Epoch: 0, Payload: encodeMergedSeal(shards, bogus)})
		if err != nil {
			t.Fatal(err)
		}
		if err := AuditSegmentedLog(context.Background(), pub, seg, -1, 0); err == nil {
			t.Error("double-sealed manifest passed the audit")
		}
	})
}

// TestShardedManifestAppendFailureRetryable: when every shard seals but the
// manifest's merged-seal append fails, the session must stay retryable —
// not report "session is finalized" — so a caller can re-merge in-process
// once the store recovers (the retry reuses the kept shard transcripts).
func TestShardedManifestAppendFailureRetryable(t *testing.T) {
	pub := testPublic(t, 1, 1, 4)
	seg, err := store.OpenSegmentedLog(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	ss, err := NewShardedSession(pub, SessionOptions{Segmented: seg})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ss.NewClientSubmission(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(context.Background(), sub); err != nil {
		t.Fatal(err)
	}
	// Break only the manifest: the segment seals still land, the
	// epoch-binding merged-seal record cannot.
	if err := seg.Manifest().Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Finalize(context.Background()); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("Finalize with a failing manifest: %v, want the manifest append error", err)
	}
	if ss.Finalized() {
		t.Fatal("manifest append failure marked the session finalized, burying the retry")
	}
	// The retry surfaces the same storage error (the manifest is still
	// down), never the misleading lifecycle error.
	if _, err := ss.Finalize(context.Background()); errors.Is(err, ErrBadConfig) {
		t.Fatalf("Finalize retry reported a lifecycle error instead of the storage error: %v", err)
	}
}

// TestShardedResetHealsMergedSeal: a caller that answers a failed
// merged-seal append with Reset (instead of a Finalize retry) must not
// orphan the fully-sealed epoch — Reset writes the missing manifest record
// from the kept shard transcripts before advancing.
func TestShardedResetHealsMergedSeal(t *testing.T) {
	pub := testPublic(t, 1, 1, 4)
	seg, err := store.OpenSegmentedLog(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	ss, err := NewShardedSession(pub, SessionOptions{Segmented: seg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sub, err := ss.NewClientSubmission(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Submit(context.Background(), sub); err != nil {
			t.Fatal(err)
		}
	}
	// Seal every shard without the front door: the manifest record is
	// missing, exactly as after a failed appendMergedSeal.
	for i := 0; i < 2; i++ {
		if _, err := ss.Shard(i).Finalize(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := AuditSegmentedLog(context.Background(), pub, seg, 0, 0); err == nil {
		t.Fatal("epoch 0 audited without a merged seal — test setup is wrong")
	}
	if err := ss.Reset(); err != nil {
		t.Fatal(err)
	}
	// The heal landed: epoch 0 is a complete merged epoch for the auditor,
	// and the session serves epoch 1 normally.
	if err := AuditSegmentedLog(context.Background(), pub, seg, 0, 0); err != nil {
		t.Errorf("epoch 0 still unauditable after Reset healed the manifest: %v", err)
	}
	sub, err := ss.NewClientSubmission(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(context.Background(), sub); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Finalize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := AuditSegmentedLog(context.Background(), pub, seg, 1, 0); err != nil {
		t.Errorf("epoch 1 audit: %v", err)
	}
}

// pickIDForShard returns a small non-negative client ID that ShardOf maps to
// the wanted shard.
func pickIDForShard(shard, shards int) int {
	for id := 0; ; id++ {
		if ShardOf(id, shards) == shard {
			return id
		}
	}
}

// TestShardedStateMachine pins the front door's lifecycle errors and the
// configuration guards around sharding.
func TestShardedStateMachine(t *testing.T) {
	pub := testPublic(t, 1, 1, 4)

	if _, err := NewSession(pub, SessionOptions{Shards: 2}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NewSession with Shards=2: %v, want ErrBadConfig", err)
	}
	if _, err := NewShardedSession(pub, SessionOptions{Store: store.NewMemLog()}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NewShardedSession with Store: %v, want ErrBadConfig", err)
	}
	dir := t.TempDir()
	seg, err := store.OpenSegmentedLog(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if _, err := NewSession(pub, SessionOptions{Segmented: seg}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NewSession with Segmented: %v, want ErrBadConfig", err)
	}
	if _, err := NewShardedSession(pub, SessionOptions{Shards: 3, Segmented: seg}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("shard-count mismatch: %v, want ErrBadConfig", err)
	}
	if _, err := ResumeSession(context.Background(), pub, SessionOptions{Segmented: seg}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("ResumeSession with Segmented: %v, want ErrBadConfig", err)
	}
	if _, err := ResumeShardedSession(context.Background(), pub, SessionOptions{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("ResumeShardedSession without Segmented: %v, want ErrBadConfig", err)
	}

	ss, err := NewShardedSession(pub, SessionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(context.Background(), nil); !errors.Is(err, ErrClientReject) {
		t.Errorf("nil submission: %v, want ErrClientReject", err)
	}
	sub, err := ss.NewClientSubmission(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(context.Background(), sub); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Finalize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !ss.Finalized() {
		t.Error("session not finalized after Finalize")
	}
	if _, err := ss.Finalize(context.Background()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("double finalize: %v, want ErrBadConfig", err)
	}
	if err := ss.Submit(context.Background(), sub); !errors.Is(err, ErrBadConfig) {
		t.Errorf("submit after finalize: %v, want ErrBadConfig", err)
	}
	if err := ss.Reset(); err != nil {
		t.Fatal(err)
	}
	if ss.Epoch() != 1 {
		t.Errorf("epoch after reset = %d, want 1", ss.Epoch())
	}
	// The same client ID is fresh again in the new epoch.
	sub2, err := ss.NewClientSubmission(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(context.Background(), sub2); err != nil {
		t.Errorf("resubmission in fresh epoch: %v", err)
	}
}

// TestShardedResetDeterminism: a seeded multi-epoch sharded schedule is
// reproducible epoch by epoch, and epochs never repeat each other's noise.
func TestShardedResetDeterminism(t *testing.T) {
	pub := testPublic(t, 1, 1, 6)
	choices := []int{1, 1, 0, 1, 0}

	runEpochs := func() [][]byte {
		ss, err := NewShardedSession(pub, SessionOptions{Rand: testSeed(64), Shards: 2, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		var digests [][]byte
		for epoch := 0; epoch < 3; epoch++ {
			for i, c := range choices {
				sub, err := ss.NewClientSubmission(i, c)
				if err != nil {
					t.Fatal(err)
				}
				if err := ss.Submit(context.Background(), sub); err != nil {
					t.Fatal(err)
				}
			}
			res, err := ss.Finalize(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			digests = append(digests, res.Digest)
			if err := ss.Reset(); err != nil {
				t.Fatal(err)
			}
		}
		return digests
	}

	a, b := runEpochs(), runEpochs()
	for e := range a {
		if !bytes.Equal(a[e], b[e]) {
			t.Errorf("epoch %d not reproducible across same-seed sharded sessions", e)
		}
	}
	for e := 1; e < len(a); e++ {
		if bytes.Equal(a[0], a[e]) {
			t.Errorf("epoch %d merged digest identical to epoch 0 — epochs share noise", e)
		}
	}
}

// TestShardedFinalizeCancellation: a cancelled Finalize reopens the sharded
// session, and the retry completes deterministically.
func TestShardedFinalizeCancellation(t *testing.T) {
	pub := testPublic(t, 1, 1, 8)
	ss, err := NewShardedSession(pub, SessionOptions{Rand: testSeed(12), Shards: 2, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sub, err := ss.NewClientSubmission(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Submit(context.Background(), sub); err != nil {
			t.Fatal(err)
		}
	}
	for _, polls := range []int{0, 2, 6} {
		if _, err := ss.Finalize(newCountdownCtx(polls)); !errors.Is(err, context.Canceled) {
			t.Fatalf("Finalize with cancellation after %d polls: %v, want context.Canceled", polls, err)
		}
	}
	res, err := ss.Finalize(context.Background())
	if err != nil {
		t.Fatalf("Finalize retry after cancellation: %v", err)
	}
	if err := AuditMerged(context.Background(), pub, res.Transcripts(), res.Release, 0); err != nil {
		t.Errorf("merged audit: %v", err)
	}
}

// BenchmarkShardedSubmit measures front-door contention: many goroutines
// hammering Submit with deferred verification, so admission — not proof
// crypto — dominates. The mem variant exercises the per-shard roster locks
// alone (its spread shows up on multi-core hosts); the durable variant is
// the production bottleneck made visible on any host: a single session
// forces every submission through ONE board log's ordered append +
// group-commit fsync stream, while Shards ≥ 4 overlap that many independent
// segment streams, cutting the per-submission cost by the overlap factor
// even on one core (fsync latency is I/O wait, not CPU).
func BenchmarkShardedSubmit(b *testing.B) {
	pub, err := Setup(Config{Provers: 1, Bins: 1, Coins: 4})
	if err != nil {
		b.Fatal(err)
	}
	flood := func(b *testing.B, ss *ShardedSession) {
		subs := make([]*ClientSubmission, b.N)
		for i := range subs {
			subs[i] = &ClientSubmission{Public: &ClientPublic{ID: i}}
		}
		var next atomic.Int64
		b.ReportAllocs()
		b.SetParallelism(4) // 4 goroutines per core: keep the serialized sections hot
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(next.Add(1)) - 1
				if err := ss.Submit(context.Background(), subs[i]); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("mem/shards=%d", shards), func(b *testing.B) {
			ss, err := NewShardedSession(pub, SessionOptions{Shards: shards, DeferVerification: true})
			if err != nil {
				b.Fatal(err)
			}
			flood(b, ss)
		})
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("durable/shards=%d", shards), func(b *testing.B) {
			seg, err := store.OpenSegmentedLog(b.TempDir(), shards)
			if err != nil {
				b.Fatal(err)
			}
			defer seg.Close()
			ss, err := NewShardedSession(pub, SessionOptions{Segmented: seg, DeferVerification: true})
			if err != nil {
				b.Fatal(err)
			}
			flood(b, ss)
		})
	}
}
