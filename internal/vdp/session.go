package vdp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/store"
)

// SessionOptions configures a streaming aggregation session.
type SessionOptions struct {
	// Parallelism is the worker-pool width of the underlying execution
	// engine: 0 selects runtime.GOMAXPROCS(0), 1 forces sequential
	// execution. Submission-time verification and every Finalize stage run
	// on this pool.
	Parallelism int
	// Rand is the randomness source (nil = crypto/rand). When set, a single
	// root seed is read once at NewSession and expanded into independent
	// per-task substreams, so the same seed produces a byte-identical
	// transcript at every Parallelism — identical to what the legacy Run
	// produces for the same seed. Later epochs (after Reset) fork
	// independent child seeds, so no epoch ever repeats another's noise.
	Rand io.Reader
	// Malice assigns deviations to prover indices for adversarial testing;
	// absent provers are honest.
	Malice map[int]Malice
	// DeferVerification postpones client board verification from Submit to
	// Finalize, where the whole board is decided by one batched Σ-OR check.
	// Submit then never rejects (except duplicates) and is nearly free; the
	// batch check is cheaper in total but gives no per-client verdict until
	// the end. This is the mode the legacy Run compatibility wrappers use.
	// The default (eager) mode verifies each submission as it arrives and
	// returns its accept/reject verdict from Submit directly.
	DeferVerification bool
	// Store, when non-nil, makes the bulletin board durable: every admitted
	// submission and verdict is appended to the log before Submit returns,
	// Finalize seals the epoch's full transcript, and Reset marks the epoch
	// boundary. After a crash, ResumeSession replays the log to continue the
	// same epoch without data loss. NewSession requires an empty log; a log
	// with history must go through ResumeSession. Nil (the default) keeps
	// the board in memory only — the pre-durability behavior.
	Store store.BoardLog
	// Shards selects the sharded front door: NewShardedSession splits the
	// session into this many independent sub-sessions (consistent-hashed by
	// client ID) so Submits on different shards never contend on a shared
	// lock. 0 and 1 mean unsharded. NewSession rejects Shards > 1 — a
	// sharded session must be opened with NewShardedSession, whose Finalize
	// merges the per-shard transcripts.
	Shards int
	// Segmented is the durable store of a sharded session: one board-log
	// segment per shard plus a manifest, each segment speaking the exact
	// single-session record grammar. Only NewShardedSession and
	// ResumeShardedSession accept it; it is the sharded counterpart of
	// Store, and the two are mutually exclusive.
	Segmented *store.SegmentedLog
	// Budget enables the per-client privacy-budget ledger: every client's
	// first admission in an epoch appends a digest-chained
	// RecordBudgetCharge debiting EpochCost µε from its lifetime Total, and
	// a client whose next charge would not fit is refused with an
	// attributable board verdict. Sharded sessions charge on the client's
	// home shard (ShardOf pins every client to one segment, so each
	// segment's chain is complete for its clients). Nil disables the ledger.
	Budget *BudgetConfig
}

// sessionState is the Submit/Finalize/Reset lifecycle position.
type sessionState int

const (
	sessionOpen sessionState = iota
	sessionFinalizing
	sessionFinalized
)

func (s sessionState) String() string {
	switch s {
	case sessionOpen:
		return "open"
	case sessionFinalizing:
		return "finalizing"
	default:
		return "finalized"
	}
}

// sessionClient is one submitted client with its session-owned verification
// state.
type sessionClient struct {
	public   *ClientPublic
	payloads []*ClientPayload
	decided  bool  // verdict reached at Submit time (eager mode)
	reject   error // non-nil = publicly attributable rejection reason
}

// Session is the streaming protocol surface: a stateful aggregation window
// over one deployment. Clients are admitted incrementally with Submit —
// verified eagerly, on the engine's worker pool, as they arrive — and the
// release is produced by Finalize, which reuses the already-verified client
// set instead of re-deciding the board. Reset reopens the session for the
// next epoch, so one engine serves many releases.
//
// Submit is safe for concurrent use from many goroutines; Finalize and
// Reset serialize against in-flight Submits. The legacy batch entry points
// (Run, RunWithSubmissions, Count, Histogram) are thin wrappers over a
// one-epoch session with DeferVerification set.
type Session struct {
	pub  *Public
	eng  *Engine
	opts SessionOptions
	root *randSource

	// flight lets Submits proceed concurrently (read side) while Finalize
	// and Reset wait for them to drain (write side). Lock order: flight
	// before mu.
	flight sync.RWMutex

	mu       sync.Mutex
	state    sessionState
	epoch    int
	resumed  bool        // reconstructed from a board log by ResumeSession
	rs       *randSource // current epoch's substream source
	order    []*sessionClient
	byID     map[int]*sessionClient
	rejected map[int]error
	sealedT  *Transcript   // current epoch's sealed transcript, once finalized
	ledger   *budgetLedger // non-nil iff opts.Budget is set; guarded by mu
}

// NewSession opens a streaming session over pub. The options' Rand is read
// once, immediately, to fix the session's root seed (see SessionOptions).
// When opts.Store is set it must be empty: a log with history belongs to an
// earlier session incarnation and must be recovered with ResumeSession, not
// silently appended to.
func NewSession(pub *Public, opts SessionOptions) (*Session, error) {
	if opts.Shards > 1 {
		return nil, fmt.Errorf("%w: SessionOptions.Shards = %d needs NewShardedSession", ErrBadConfig, opts.Shards)
	}
	if opts.Segmented != nil {
		return nil, fmt.Errorf("%w: a segmented store belongs to a sharded session; use NewShardedSession", ErrBadConfig)
	}
	if err := opts.Budget.validate(); err != nil {
		return nil, err
	}
	if err := ensureEmptyLog(opts.Store); err != nil {
		return nil, err
	}
	return newSessionWithEngine(NewEngine(pub, opts.Parallelism), opts)
}

// ensureEmptyLog verifies that a board log holds no records yet; a log with
// history belongs to an earlier session incarnation and must be recovered
// with ResumeSession, not silently appended to. A nil log is trivially empty.
func ensureEmptyLog(log store.BoardLog) error {
	if log == nil {
		return nil
	}
	err := log.Replay(func(*store.Record) error { return errLogNotEmpty })
	if errors.Is(err, errLogNotEmpty) {
		return fmt.Errorf("%w: board log already holds records; use ResumeSession to recover it", ErrBadConfig)
	}
	return err
}

// newSessionWithEngine builds a session on an existing engine, used by the
// engine's own Run wrappers so they honour their configured pool width.
func newSessionWithEngine(e *Engine, opts SessionOptions) (*Session, error) {
	root, err := newRandSource(opts.Rand)
	if err != nil {
		return nil, err
	}
	return newSessionFromSource(e, opts, root), nil
}

// newSessionFromSource builds a session whose deterministic substreams hang
// off an already-derived root source, used by the sharded front door to give
// every shard an independent fork of one root seed without re-reading
// SessionOptions.Rand per shard.
func newSessionFromSource(e *Engine, opts SessionOptions, root *randSource) *Session {
	s := &Session{
		pub:      e.pub,
		eng:      e,
		opts:     opts,
		root:     root,
		rs:       root,
		byID:     make(map[int]*sessionClient),
		rejected: make(map[int]error),
	}
	if opts.Budget != nil {
		s.ledger = newBudgetLedger(opts.Budget)
	}
	return s
}

// Epoch returns the session's current epoch number (0 before the first
// Reset).
func (s *Session) Epoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Resumed reports whether the session was reconstructed from a board log by
// ResumeSession rather than opened fresh.
func (s *Session) Resumed() bool { return s.resumed }

// Finalized reports whether the current epoch has been sealed by Finalize
// (and not yet reopened by Reset). A resumed session whose log ended in a
// sealed epoch starts out finalized.
func (s *Session) Finalized() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == sessionFinalized
}

// Submitted returns how many clients the current epoch has admitted
// (accepted and rejected alike) so far.
func (s *Session) Submitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Accepted returns how many of the current epoch's submissions hold a clean
// (accepting) verdict so far. Deferred-verification sessions report 0 until
// Finalize decides the board.
func (s *Session) Accepted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, cl := range s.order {
		if cl.decided && cl.reject == nil {
			n++
		}
	}
	return n
}

// Rejected returns a snapshot of the current epoch's rejection reasons by
// client ID.
func (s *Session) Rejected() map[int]error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]error, len(s.rejected))
	for id, err := range s.rejected {
		out[id] = err
	}
	return out
}

// NewClientSubmission builds client material for the current epoch from the
// session's deterministic substream for clientID (or crypto/rand when the
// session is unseeded). It is how the Run compatibility wrappers — and
// reproducibility tests — generate the same per-client material the legacy
// batch path did; real deployments receive submissions built remotely by
// Public.NewClientSubmission instead.
func (s *Session) NewClientSubmission(clientID, choice int) (*ClientSubmission, error) {
	s.mu.Lock()
	rs := s.rs
	s.mu.Unlock()
	return s.pub.NewClientSubmission(clientID, choice, rs.stream(labelClient, clientID))
}

// Submit admits one client into the current epoch. In the default eager
// mode the client's board proof and per-prover share openings are verified
// immediately, fanned out over the engine's worker pool, and the verdict is
// the return value: nil admits the client to the roster; an
// ErrClientReject-wrapped error records the rejection. A client whose
// *board proof* fails still appears on the bulletin board with its public
// verdict, exactly as in the batch path; a client whose *payload* fails
// (bad or missing share openings — a private-channel dispute) is refused
// outright and never posted, keeping the transcript publicly auditable.
// Duplicate IDs and submissions after Finalize fail without being
// recorded. A cancelled ctx aborts the verification and withdraws the
// submission, returning ctx.Err().
//
// Submit is safe for concurrent use; verdicts are per-client and
// independent of interleaving.
func (s *Session) Submit(ctx context.Context, sub *ClientSubmission) error {
	if sub == nil || sub.Public == nil {
		return fmt.Errorf("%w: nil submission", ErrClientReject)
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	s.flight.RLock()
	defer s.flight.RUnlock()

	// Encode the durable submission record outside the roster lock; it is
	// appended *inside* the lock so log order always equals board order —
	// the property that makes a recovered transcript byte-identical.
	var subRec []byte
	if s.opts.Store != nil {
		subRec = s.pub.EncodeClientSubmission(sub)
	}

	cl := &sessionClient{public: sub.Public, payloads: sub.Payloads}
	s.mu.Lock()
	if s.state != sessionOpen {
		// Capture the state before unlocking: a concurrent Finalize/Reset
		// may rewrite it the moment the lock drops.
		st := s.state
		s.mu.Unlock()
		return fmt.Errorf("%w: session is %s", ErrBadConfig, st)
	}
	if _, dup := s.byID[sub.Public.ID]; dup {
		s.mu.Unlock()
		return fmt.Errorf("%w: duplicate submission from client %d", ErrClientReject, sub.Public.ID)
	}
	if s.ledger != nil && !s.ledger.canCharge(s.epoch, sub.Public.ID) {
		// The client's lifetime privacy budget cannot cover another epoch:
		// refuse with an attributable, board-recorded verdict. The refusal is
		// definitive (no verification runs), the submission never reaches the
		// board order, and — unlike an admission — nothing is charged.
		return s.refuseOverBudgetLocked(cl, subRec)
	}
	if subRec != nil {
		// Ordered write inside the lock; the fsync is deferred to the
		// group-commit below so concurrent Submits don't serialize on disk.
		if err := s.appendRecordOrdered(RecordSubmission, s.epoch, subRec); err != nil {
			// Not durable, not admitted: the reservation was never made.
			s.mu.Unlock()
			return err
		}
	}
	if s.ledger != nil {
		// Charge the epoch's budget right behind the submission record, in
		// the same group-commit window. The ledger mutates only after the
		// append succeeds, so a failing store never forks the chain.
		if payload, commit := s.ledger.prepareCharge(s.epoch, sub.Public.ID); payload != nil {
			if err := s.appendRecordOrdered(RecordBudgetCharge, s.epoch, payload); err != nil {
				// The submission record may have landed without its charge;
				// withdraw it so the log does not admit an uncharged client.
				_ = s.appendRecord(RecordWithdraw, s.epoch, encodeWithdraw(sub.Public.ID))
				s.mu.Unlock()
				return err
			}
			commit()
		}
	}
	s.byID[sub.Public.ID] = cl
	s.order = append(s.order, cl)
	epoch := s.epoch
	s.mu.Unlock()

	if subRec != nil {
		// Group commit: one fsync covers this submission record and any
		// neighbours that were written since the last flush. It must land
		// before the client hears anything — verdict or deferred ack.
		if err := s.syncStore(); err != nil {
			s.mu.Lock()
			delete(s.byID, sub.Public.ID)
			s.removeFromOrderLocked(cl)
			_ = s.appendRecord(RecordWithdraw, epoch, encodeWithdraw(sub.Public.ID))
			s.mu.Unlock()
			return err
		}
	}

	if s.opts.DeferVerification {
		return nil
	}

	verdict, onBoard, err := s.verify(ctx, sub)
	if err != nil {
		// Cancelled mid-verification: withdraw the reservation so a retry
		// of the same client is not a duplicate.
		s.withdraw(cl)
		return err
	}
	s.mu.Lock()
	cl.decided = true
	cl.reject = verdict
	if verdict != nil {
		s.rejected[sub.Public.ID] = verdict
		if !onBoard {
			// The failure happened on the private channel (bad or missing
			// share openings), so the submission is refused outright and its
			// public part never reaches the bulletin board. Posting it would
			// break public auditability: the auditor recomputes the roster
			// from board proofs alone, and Line 13's commitment product must
			// cover every board-valid client. The ID stays reserved.
			s.removeFromOrderLocked(cl)
		}
	}
	s.mu.Unlock()

	// The verdict append (an fsync on a durable store) runs outside the
	// roster lock: only submission records need log order to equal board
	// order, and the flight read-lock held for the whole Submit keeps
	// Finalize/Reset from sealing the epoch under us.
	if err := s.appendRecord(RecordVerdict, epoch, encodeVerdict(sub.Public.ID, verdict, onBoard)); err != nil {
		// The verdict cannot be made durable; rather than let log and
		// session diverge, withdraw the submission entirely (best-effort
		// withdrawal record — the store is already failing) and report the
		// storage error instead of a verdict. The withdraw append stays
		// inside the roster lock so a concurrent retry of the same ID
		// cannot slot its submission record between the removal and the
		// withdrawal, which would make the log unreplayable.
		s.mu.Lock()
		delete(s.byID, sub.Public.ID)
		delete(s.rejected, sub.Public.ID)
		s.removeFromOrderLocked(cl)
		_ = s.appendRecord(RecordWithdraw, epoch, encodeWithdraw(sub.Public.ID))
		s.mu.Unlock()
		return err
	}
	return verdict
}

// verify decides one submission eagerly: the board legality proof via the
// batched Σ-OR verifier (a batch of one, multi-exponentiations chunked
// across the engine's pool) and the K per-prover share-opening checks fanned
// out over the same pool. The verdict — including the exact rejection
// sentinel and reason — matches what the batch-at-finalize path would
// produce for the same submission. onBoard reports whether the public part
// belongs on the bulletin board: board-level failures are publicly
// attributable and stay on the board (as in the batch path), while
// private-channel payload failures mean the submission is refused outright.
// A non-nil err means cancellation, not a verdict.
func (s *Session) verify(ctx context.Context, sub *ClientSubmission) (verdict error, onBoard bool, err error) {
	_, rej, err := s.pub.filterValidClientsBatch(ctx, []*ClientPublic{sub.Public}, s.eng.workers)
	if err != nil {
		return nil, false, err
	}
	if r, ok := rej[sub.Public.ID]; ok {
		return r, true, nil
	}
	k := s.pub.cfg.Provers
	if len(sub.Payloads) != k {
		return fmt.Errorf("%w: client %d supplied %d per-prover payloads, want %d",
			ErrClientReject, sub.Public.ID, len(sub.Payloads), k), false, nil
	}
	rejects := make([]error, k)
	ferr := forEach(ctx, s.eng.workers, k, func(pk int) error {
		rejects[pk] = s.pub.checkPayloadOpenings(sub.Public, sub.Payloads[pk], pk)
		return nil
	})
	if ferr != nil {
		return nil, false, ferr
	}
	for _, r := range rejects { // lowest prover index names the reason
		if r != nil {
			return r, false, nil
		}
	}
	return nil, true, nil
}

// refuseOverBudgetLocked refuses a submission whose next epoch charge would
// exceed the client's lifetime budget. Called with s.mu held (and releases
// it): the submission record still lands on the log — the refusal must be
// attributable, so resubmission attempts leave durable evidence — followed
// by an off-board refusal verdict carrying the budget marker. The ID stays
// reserved for the epoch (like a payload refusal) and is never charged.
func (s *Session) refuseOverBudgetLocked(cl *sessionClient, subRec []byte) error {
	id := cl.public.ID
	refusal := budgetRefusalError(id, s.ledger.spent[id], s.ledger.cfg.EpochCost, s.ledger.cfg.Total)
	if subRec != nil {
		if err := s.appendRecordOrdered(RecordSubmission, s.epoch, subRec); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	cl.decided = true
	cl.reject = refusal
	s.byID[id] = cl
	s.rejected[id] = refusal
	epoch := s.epoch
	s.mu.Unlock()

	rollback := func() {
		s.mu.Lock()
		delete(s.byID, id)
		delete(s.rejected, id)
		_ = s.appendRecord(RecordWithdraw, epoch, encodeWithdraw(id))
		s.mu.Unlock()
	}
	if subRec != nil {
		if err := s.syncStore(); err != nil {
			rollback()
			return err
		}
	}
	if err := s.appendRecord(RecordVerdict, epoch, encodeVerdict(id, refusal, false)); err != nil {
		rollback()
		return err
	}
	return refusal
}

// removeFromOrderLocked splices one client out of the submission order.
// Callers hold s.mu.
func (s *Session) removeFromOrderLocked(cl *sessionClient) {
	for i, c := range s.order {
		if c == cl {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// withdraw removes a reserved client whose verification never completed,
// releasing its ID for a retry. The withdrawal is recorded in the board log
// (best effort — the submission's own record is already durable, and a
// replay treats an unwithdrawn, verdict-less submission as "re-verify") so
// a resumed session agrees with this one about the client's absence.
func (s *Session) withdraw(cl *sessionClient) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byID, cl.public.ID)
	s.removeFromOrderLocked(cl)
	_ = s.appendRecord(RecordWithdraw, s.epoch, encodeWithdraw(cl.public.ID))
}

// Finalize closes the current epoch and runs the remaining protocol stages —
// noise-coin commitment and Σ-OR proving, Morra public-coin sampling,
// prover outputs, the Line 13 product check, and aggregation — over the
// already-verified client set. It waits for in-flight Submits to drain, then
// refuses new ones. On success the session is finalized until Reset. A
// cancelled ctx returns ctx.Err() promptly from the next stage boundary and
// reopens the session, so a timed-out Finalize can be retried (the
// deterministic substreams make the retry produce the identical transcript).
func (s *Session) Finalize(ctx context.Context) (*RunResult, error) {
	s.flight.Lock()
	s.mu.Lock()
	if s.state != sessionOpen {
		st := s.state
		s.mu.Unlock()
		s.flight.Unlock()
		return nil, fmt.Errorf("%w: session is %s", ErrBadConfig, st)
	}
	s.state = sessionFinalizing
	order := make([]*sessionClient, len(s.order))
	copy(order, s.order)
	rejected := make(map[int]error, len(s.rejected))
	for id, rerr := range s.rejected {
		rejected[id] = rerr
	}
	rs := s.rs
	epoch := s.epoch
	s.mu.Unlock()
	s.flight.Unlock()

	publics := make([]*ClientPublic, len(order))
	payloads := make(map[int][]*ClientPayload, len(order))
	var pre *fixedRoster
	if !s.opts.DeferVerification {
		// Seed with every recorded verdict: payload-rejected clients are
		// not in order (they never reached the board) but their reasons
		// still belong in the result.
		pre = &fixedRoster{rejected: rejected, payloadsChecked: true}
	}
	for i, cl := range order {
		publics[i] = cl.public
		if cl.payloads != nil {
			payloads[cl.public.ID] = cl.payloads
		}
		if pre != nil {
			switch {
			case cl.reject != nil:
				pre.rejected[cl.public.ID] = cl.reject
			case cl.decided:
				pre.valid = append(pre.valid, cl.public)
			default:
				// Unreachable in eager mode: every recorded client is
				// decided. Guard anyway so a future bug fails loudly.
				pre.rejected[cl.public.ID] = fmt.Errorf("%w: client %d was never verified",
					ErrClientReject, cl.public.ID)
			}
		}
	}

	res, err := s.eng.run(ctx, publics, payloads, &RunOptions{Malice: s.opts.Malice}, rs, pre)

	if err == nil {
		// Seal the epoch: the full public transcript becomes one durable
		// record, sufficient for ResumeSession (skip the epoch) and for
		// AuditLog (re-verify it offline). An unsealable epoch stays open so
		// the deterministic Finalize can be retried once the store recovers.
		if serr := s.appendSeal(epoch, s.pub.EncodeTranscript(res.Transcript)); serr != nil {
			s.mu.Lock()
			s.state = sessionOpen
			s.mu.Unlock()
			return nil, serr
		}
	}

	s.mu.Lock()
	if err != nil && ctxErr(ctx) != nil && errors.Is(err, ctxErr(ctx)) {
		s.state = sessionOpen // cancelled, not consumed: allow retry
	} else {
		s.state = sessionFinalized
		if err == nil {
			s.sealedT = res.Transcript
		}
	}
	s.mu.Unlock()
	return res, err
}

// SealedTranscript returns the current epoch's sealed transcript: non-nil
// once Finalize succeeded (or when ResumeSession recovered an epoch that was
// already sealed in the board log), nil again after Reset. The sharded front
// door uses it to re-merge an epoch whose shards sealed before a crash.
func (s *Session) SealedTranscript() *Transcript {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealedT
}

// Reset reopens a finalized session for the next epoch: the client roster
// and verdicts are cleared and the epoch counter advances. A seeded
// session forks an independent child seed per epoch, so epochs never share
// noise substreams while the whole multi-epoch schedule stays reproducible.
// Resetting an open epoch discards its pending submissions.
func (s *Session) Reset() error {
	s.flight.Lock()
	defer s.flight.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == sessionFinalizing {
		return fmt.Errorf("%w: session is finalizing", ErrBadConfig)
	}
	if err := s.appendRecord(RecordReset, s.epoch, nil); err != nil {
		return err
	}
	s.epoch++
	s.rs = s.root.fork(s.epoch)
	s.state = sessionOpen
	s.order = nil
	s.byID = make(map[int]*sessionClient)
	s.rejected = make(map[int]error)
	s.sealedT = nil
	return nil
}

// Compact closes a finalized epoch with a snapshot record instead of a
// Reset: the snapshot pins the sealed epoch's TranscriptDigest and doubles
// as the epoch boundary, so the next restart boots from it — replaying only
// the records appended after the snapshot — while the compacted epoch's
// full evidence stays in the log for offline auditing. Compact requires a
// sealed transcript (a finalized epoch always has one except after a crash
// that lost the seal mid-append; Reset still closes that epoch). On a
// memory-backed session Compact degenerates to Reset.
func (s *Session) Compact() error {
	s.flight.Lock()
	defer s.flight.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != sessionFinalized {
		return fmt.Errorf("%w: only a finalized epoch can be compacted", ErrBadConfig)
	}
	if s.sealedT == nil {
		return fmt.Errorf("%w: epoch %d has no sealed transcript to snapshot", ErrBadConfig, s.epoch)
	}
	digest := TranscriptDigest(s.pub, s.sealedT)
	if err := s.appendRecord(RecordSnapshot, s.epoch, encodeSnapshot(s.epoch, digest)); err != nil {
		return err
	}
	s.epoch++
	s.rs = s.root.fork(s.epoch)
	s.state = sessionOpen
	s.order = nil
	s.byID = make(map[int]*sessionClient)
	s.rejected = make(map[int]error)
	s.sealedT = nil
	return nil
}
