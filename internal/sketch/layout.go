package sketch

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Layout maps items of a bounded integer domain onto the cells of a
// Rows×Width count-min sketch. Each row carries an independent hash of the
// item (FNV-1a salted with the row index), so a client reporting item x
// contributes a one-hot vector per row — bucket Cell(r, x) in row r — and a
// point query reads back the minimum across rows, which bounds the
// count-min overcount. The layout is pure arithmetic shared verbatim by
// clients, the curator, and auditors: all parties must agree on every cell
// or the released sketch answers the wrong queries.
type Layout struct {
	// Rows is the number of independent hash rows (count-min depth d).
	Rows int
	// Width is the number of buckets per row (count-min width w). It equals
	// the ΠBin bin count M of each row's one-hot protocol instance.
	Width int
	// Domain bounds the item universe: items are integers in [0, Domain).
	// HeavyHitters enumerates it, so it must be modest (telemetry enums,
	// error codes, ports — not raw strings; hash those to a domain first).
	Domain int
}

// Validate checks the layout's ranges.
func (l Layout) Validate() error {
	if l.Rows < 1 {
		return fmt.Errorf("sketch: layout needs at least 1 row, got %d", l.Rows)
	}
	if l.Width < 2 {
		return fmt.Errorf("sketch: layout needs at least 2 buckets per row, got %d", l.Width)
	}
	if l.Domain < 1 {
		return fmt.Errorf("sketch: layout needs a positive item domain, got %d", l.Domain)
	}
	return nil
}

// ParseLayout parses the "RxWxD" (rows x width x domain) flag form shared
// by vdpserver -sketch and vdpclient -sketch, e.g. "4x16x1024". Client and
// curator must pass the same spec: the layout is part of the deployment.
func ParseLayout(s string) (Layout, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return Layout{}, fmt.Errorf("sketch: layout %q is not of the form rowsxwidthxdomain (e.g. 4x16x1024)", s)
	}
	var n [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return Layout{}, fmt.Errorf("sketch: layout %q: %q is not an integer", s, p)
		}
		n[i] = v
	}
	l := Layout{Rows: n[0], Width: n[1], Domain: n[2]}
	if err := l.Validate(); err != nil {
		return Layout{}, err
	}
	return l, nil
}

// Cell returns the bucket item hashes to in the given row: FNV-1a over the
// row index and the item, finalized and reduced mod Width. Deterministic
// across processes and platforms — the salt is data, not seed state.
//
// The finalizer matters: FNV-1a's last per-byte step is a multiply, so two
// inputs whose final bytes differ by 2^b produce hashes differing by
// ±2^b·prime — congruent mod 2^b. Without mixing, any power-of-two Width
// ≤ 2^b would put items item and item+2^b in the same cell of EVERY row,
// and the count-min minimum could never separate them. The 64-bit
// avalanche (MurmurHash3's fmix64) spreads that difference across all
// bits before the reduction.
func (l Layout) Cell(row, item int) int {
	h := fnv.New64a()
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], uint64(row))
	binary.BigEndian.PutUint64(b[8:], uint64(item))
	h.Write(b[:])
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(l.Width))
}

// Cells returns the item's bucket in every row, in row order.
func (l Layout) Cells(item int) []int {
	out := make([]int, l.Rows)
	for r := range out {
		out[r] = l.Cell(r, item)
	}
	return out
}
