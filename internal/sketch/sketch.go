// Package sketch reimplements the PRIO/Poplar-style client-input validation
// baseline the paper compares against: the Boyle-Gilboa-Ishai random linear
// sketch [BGI16] that lets K servers check, over additive shares and
// without public-key cryptography, that a client's input is a one-hot
// vector.
//
// For input x ∈ Z_q^M and a public random vector r, the servers compute
//
//	z  = ⟨r, x⟩,   z* = ⟨r∘r, x⟩,   w = ⟨1, x⟩
//
// from their shares and test z² = z* ∧ w = 1. For a one-hot x with hot
// index j this holds identically (z = r_j, z* = r_j²); for any x outside
// the language it fails with probability 1 - O(M/q) over the choice of r.
//
// The protocol is fast — two length-M inner products per server versus M
// Σ-OR proofs (≈ 6M group exponentiations) for the paper's approach, the
// order-of-magnitude gap shown in Figure 4 — but it is *not* verifiable in
// the sense of Definition 7. This package also implements the two Figure 1
// attacks that exploit that gap:
//
//   - ExclusionAttack (Figure 1a): a corrupted server ignores the honest
//     client's share and substitutes garbage; the sketch check fails and
//     the honest client is silently excluded, with no evidence
//     distinguishing a cheating server from a cheating client.
//
//   - CollusionAttack (Figure 1b): a client reveals its shares to a
//     corrupted server, which then adjusts its sketch responses so an
//     illegal input passes validation.
//
// Both attacks succeed here and are structurally impossible against
// internal/vdp, which is the executable content of Table 2's "Auditable"
// column.
package sketch

import (
	"fmt"
	"io"

	"repro/internal/field"
	"repro/internal/share"
)

// Params fixes the field and input dimensionality.
type Params struct {
	F *field.Field
	M int // histogram bins
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.F == nil {
		return fmt.Errorf("sketch: nil field")
	}
	if p.M < 1 {
		return fmt.Errorf("sketch: need at least 1 bin, got %d", p.M)
	}
	return nil
}

// ClientShares is a client's submission: additive shares of its (claimed)
// one-hot vector for each of the two servers.
type ClientShares struct {
	// Shares[k][j] is server k's share of coordinate j.
	Shares [2][]*field.Element
}

// ShareOneHot builds an honest client submission with a 1 at index hot.
func ShareOneHot(p Params, hot int, rnd io.Reader) (*ClientShares, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if hot < 0 || hot >= p.M {
		return nil, fmt.Errorf("sketch: hot index %d out of [0,%d)", hot, p.M)
	}
	cs := &ClientShares{}
	cs.Shares[0] = make([]*field.Element, p.M)
	cs.Shares[1] = make([]*field.Element, p.M)
	for j := 0; j < p.M; j++ {
		v := p.F.Zero()
		if j == hot {
			v = p.F.One()
		}
		sh, err := share.Additive(v, 2, rnd)
		if err != nil {
			return nil, err
		}
		cs.Shares[0][j] = sh[0]
		cs.Shares[1][j] = sh[1]
	}
	return cs, nil
}

// ShareVector builds a submission for an arbitrary (possibly illegal)
// vector — used by attack scenarios.
func ShareVector(p Params, vec []*field.Element, rnd io.Reader) (*ClientShares, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(vec) != p.M {
		return nil, fmt.Errorf("sketch: vector has %d coordinates, want %d", len(vec), p.M)
	}
	cs := &ClientShares{}
	cs.Shares[0] = make([]*field.Element, p.M)
	cs.Shares[1] = make([]*field.Element, p.M)
	for j, v := range vec {
		sh, err := share.Additive(v, 2, rnd)
		if err != nil {
			return nil, err
		}
		cs.Shares[0][j] = sh[0]
		cs.Shares[1][j] = sh[1]
	}
	return cs, nil
}

// Challenge is the public sketch randomness: r and its coordinate-wise
// square. In the deployed systems the servers derive it jointly; here the
// caller samples it once per client validation.
type Challenge struct {
	R  []*field.Element
	R2 []*field.Element
}

// NewChallenge samples sketch randomness of dimension M.
func NewChallenge(p Params, rnd io.Reader) (*Challenge, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ch := &Challenge{R: make([]*field.Element, p.M), R2: make([]*field.Element, p.M)}
	for j := 0; j < p.M; j++ {
		r, err := p.F.Rand(rnd)
		if err != nil {
			return nil, err
		}
		ch.R[j] = r
		ch.R2[j] = r.Square()
	}
	return ch, nil
}

// ServerSketch is one server's local contribution to the check: the three
// inner products over its shares.
type ServerSketch struct {
	Z  *field.Element // ⟨r, x_k⟩
	Z2 *field.Element // ⟨r², x_k⟩
	W  *field.Element // ⟨1, x_k⟩
}

// ComputeSketch evaluates a server's sketch shares honestly.
func ComputeSketch(ch *Challenge, shares []*field.Element) (*ServerSketch, error) {
	if len(shares) == 0 || len(ch.R) == 0 {
		return nil, fmt.Errorf("sketch: empty share or challenge vector")
	}
	if len(shares) != len(ch.R) {
		return nil, fmt.Errorf("sketch: share vector has %d coordinates, want %d", len(shares), len(ch.R))
	}
	f := shares[0].Field()
	return &ServerSketch{
		Z:  field.InnerProduct(ch.R, shares),
		Z2: field.InnerProduct(ch.R2, shares),
		W:  f.Sum(shares...),
	}, nil
}

// VerifySketches combines the two servers' sketch shares and applies the
// one-hot test: (z0+z1)² = (z0*+z1*) and (w0+w1) = 1. The sketches must be
// computed over f — a sketch from a different field is a caller error, not
// an invalid client, and is reported as such.
func VerifySketches(f *field.Field, s0, s1 *ServerSketch) (bool, error) {
	if f == nil || s0 == nil || s1 == nil {
		return false, fmt.Errorf("sketch: nil field or server sketch")
	}
	for i, s := range []*ServerSketch{s0, s1} {
		for _, e := range []*field.Element{s.Z, s.Z2, s.W} {
			if e == nil || !f.Equal(e.Field()) {
				return false, fmt.Errorf("sketch: server %d sketch is not over the expected field", i)
			}
		}
	}
	z := s0.Z.Add(s1.Z)
	z2 := s0.Z2.Add(s1.Z2)
	w := s0.W.Add(s1.W)
	return z.Square().Equal(z2) && w.IsOne(), nil
}

// ValidateClient is the honest two-server validation flow for one client.
func ValidateClient(p Params, cs *ClientShares, rnd io.Reader) (bool, error) {
	ch, err := NewChallenge(p, rnd)
	if err != nil {
		return false, err
	}
	s0, err := ComputeSketch(ch, cs.Shares[0])
	if err != nil {
		return false, err
	}
	s1, err := ComputeSketch(ch, cs.Shares[1])
	if err != nil {
		return false, err
	}
	return VerifySketches(p.F, s0, s1)
}

// ValidateClientBit validates a degenerate 1-bin submission, where the
// shared value is a bit b ∈ {0,1} rather than a one-hot vector. The full
// one-hot test would wrongly reject an honest b = 0 (w = 1 fails), so only
// the quadratic part applies: z = r·b and z* = r²·b satisfy z² = z* exactly
// when b² = b, i.e. b ∈ {0,1}, except with probability O(1/q) over r.
func ValidateClientBit(p Params, cs *ClientShares, rnd io.Reader) (bool, error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	if p.M != 1 {
		return false, fmt.Errorf("sketch: ValidateClientBit needs M = 1, got %d", p.M)
	}
	ch, err := NewChallenge(p, rnd)
	if err != nil {
		return false, err
	}
	s0, err := ComputeSketch(ch, cs.Shares[0])
	if err != nil {
		return false, err
	}
	s1, err := ComputeSketch(ch, cs.Shares[1])
	if err != nil {
		return false, err
	}
	z := s0.Z.Add(s1.Z)
	z2 := s0.Z2.Add(s1.Z2)
	return z.Square().Equal(z2), nil
}

// ExclusionAttack mounts Figure 1(a): server 1 is corrupted and evaluates
// its sketch over garbage instead of the honest client's real share. It
// returns the validation verdict the servers reach — false, i.e. the
// honest client is excluded — and, crucially, there is no artifact an
// auditor could use to attribute the failure to the server rather than the
// client.
func ExclusionAttack(p Params, cs *ClientShares, rnd io.Reader) (clientAccepted bool, err error) {
	ch, err := NewChallenge(p, rnd)
	if err != nil {
		return false, err
	}
	s0, err := ComputeSketch(ch, cs.Shares[0])
	if err != nil {
		return false, err
	}
	// Corrupted server: substitute a random share vector.
	garbage := make([]*field.Element, p.M)
	for j := range garbage {
		g, err := p.F.Rand(rnd)
		if err != nil {
			return false, err
		}
		garbage[j] = g
	}
	s1, err := ComputeSketch(ch, garbage)
	if err != nil {
		return false, err
	}
	return VerifySketches(p.F, s0, s1)
}

// CollusionAttack mounts Figure 1(b): the client submits shares of an
// *illegal* vector (e.g. 5 votes in one bin) and reveals everything to the
// corrupted server 1, which then forges its sketch shares so the combined
// check passes. It returns the verdict — true, i.e. the illegal input is
// admitted — along with the illegal vector that got in.
func CollusionAttack(p Params, illegal []*field.Element, rnd io.Reader) (clientAccepted bool, err error) {
	cs, err := ShareVector(p, illegal, rnd)
	if err != nil {
		return false, err
	}
	ch, err := NewChallenge(p, rnd)
	if err != nil {
		return false, err
	}
	// Honest server 0 computes its sketch truthfully.
	s0, err := ComputeSketch(ch, cs.Shares[0])
	if err != nil {
		return false, err
	}
	// Corrupted server 1 knows the full input (the client revealed it), so
	// it can compute what the combined sketch *should* look like for some
	// legal one-hot decoy and publish the difference: z1 = z_decoy - z0,
	// z2_1 = z2_decoy - z2_0, w1 = 1 - w0.
	f := p.F
	decoyZ := ch.R[0] // pretend x = e_0
	decoyZ2 := ch.R2[0]
	s1 := &ServerSketch{
		Z:  decoyZ.Sub(s0.Z),
		Z2: decoyZ2.Sub(s0.Z2),
		W:  f.One().Sub(s0.W),
	}
	return VerifySketches(p.F, s0, s1)
}
