package sketch

import "testing"

func TestParseLayout(t *testing.T) {
	l, err := ParseLayout("4x16x1024")
	if err != nil {
		t.Fatalf("ParseLayout: %v", err)
	}
	if l.Rows != 4 || l.Width != 16 || l.Domain != 1024 {
		t.Fatalf("ParseLayout = %+v, want {4 16 1024}", l)
	}
	if _, err := ParseLayout(" 2 x 8 x 32 "); err != nil {
		t.Fatalf("ParseLayout with spaces: %v", err)
	}
	for _, bad := range []string{"", "4x16", "4x16x1024x2", "ax16x32", "0x16x32", "3x1x32", "3x16x0"} {
		if _, err := ParseLayout(bad); err == nil {
			t.Errorf("ParseLayout(%q) accepted", bad)
		}
	}
}

// Raw FNV-1a reduced mod a power-of-two Width put items differing by a
// multiple of Width into the same cell of every row (the final multiply
// maps a ±2^b input difference to a ±2^b·prime hash difference, congruent
// mod 2^b), so the count-min minimum could never separate item from
// item+Width. The finalizer must break that congruence: for every item,
// some row must separate it from its Width-offset aliases.
func TestLayoutCellNoPowerOfTwoAliasing(t *testing.T) {
	for _, width := range []int{8, 16, 32} {
		l := Layout{Rows: 4, Width: width, Domain: 4 * width}
		for item := 0; item < l.Domain-width; item++ {
			separated := false
			for r := 0; r < l.Rows; r++ {
				if l.Cell(r, item) != l.Cell(r, item+width) {
					separated = true
					break
				}
			}
			if !separated {
				t.Errorf("width %d: items %d and %d share a cell in every row", width, item, item+width)
			}
		}
	}
}

func TestLayoutCellDeterministicAndBounded(t *testing.T) {
	l := Layout{Rows: 3, Width: 8, Domain: 64}
	for item := 0; item < l.Domain; item++ {
		cells := l.Cells(item)
		if len(cells) != l.Rows {
			t.Fatalf("Cells(%d) returned %d rows, want %d", item, len(cells), l.Rows)
		}
		for r, c := range cells {
			if c < 0 || c >= l.Width {
				t.Fatalf("Cell(%d, %d) = %d out of [0, %d)", r, item, c, l.Width)
			}
			if again := l.Cell(r, item); again != c {
				t.Fatalf("Cell(%d, %d) flapped: %d then %d", r, item, c, again)
			}
		}
	}
}
