package sketch

import (
	"math/big"
	"testing"

	"repro/internal/field"
	"repro/internal/group"
	"repro/internal/pedersen"
)

// Regression: ComputeSketch used to index shares[0] before checking for
// emptiness and panicked on empty share/challenge vectors.
func TestComputeSketchEmptyVectors(t *testing.T) {
	f := pedersen.Setup(group.P256()).ScalarField()
	p := Params{F: f, M: 2}
	ch, err := NewChallenge(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeSketch(ch, nil); err == nil {
		t.Error("empty share vector accepted")
	}
	if _, err := ComputeSketch(&Challenge{}, nil); err == nil {
		t.Error("empty challenge and share vectors accepted")
	}
	if _, err := ComputeSketch(&Challenge{}, []*field.Element{f.One()}); err == nil {
		t.Error("empty challenge accepted")
	}
}

// Regression: VerifySketches used to ignore its field parameter entirely, so
// sketches from a different field verified silently.
func TestVerifySketchesFieldMismatch(t *testing.T) {
	f := pedersen.Setup(group.P256()).ScalarField()
	other := field.MustNew(big.NewInt(101))
	p := Params{F: other, M: 3}
	cs, err := ShareOneHot(p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChallenge(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := ComputeSketch(ch, cs.Shares[0])
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ComputeSketch(ch, cs.Shares[1])
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := VerifySketches(other, s0, s1); err != nil || !ok {
		t.Fatalf("honest sketch over the declared field rejected: ok=%v err=%v", ok, err)
	}
	if _, err := VerifySketches(f, s0, s1); err == nil {
		t.Error("sketches over the wrong field verified without error")
	}
	if _, err := VerifySketches(nil, s0, s1); err == nil {
		t.Error("nil field accepted")
	}
	if _, err := VerifySketches(f, nil, s1); err == nil {
		t.Error("nil sketch accepted")
	}
}

// ValidateClientBit applies only the quadratic part of the sketch test, so
// an honest 0 bit passes (the one-hot w = 1 test would reject it) while any
// value outside {0,1} fails.
func TestValidateClientBit(t *testing.T) {
	f := pedersen.Setup(group.P256()).ScalarField()
	p := Params{F: f, M: 1}
	for _, v := range []int64{0, 1} {
		cs, err := ShareVector(p, []*field.Element{f.FromInt64(v)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := ValidateClientBit(p, cs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("honest bit %d rejected", v)
		}
	}
	for _, v := range []int64{-1, 2, 5, 1000} {
		cs, err := ShareVector(p, []*field.Element{f.FromInt64(v)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := ValidateClientBit(p, cs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("malformed bit value %d accepted", v)
		}
	}
	if _, err := ValidateClientBit(Params{F: f, M: 2}, nil, nil); err == nil {
		t.Error("ValidateClientBit accepted M = 2")
	}
}
