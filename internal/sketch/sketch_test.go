package sketch

import (
	"testing"

	"repro/internal/field"
)

var f = field.MustNewFromHex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")

func params(m int) Params { return Params{F: f, M: m} }

func TestParamsValidate(t *testing.T) {
	if (Params{F: nil, M: 3}).Validate() == nil {
		t.Error("accepted nil field")
	}
	if (Params{F: f, M: 0}).Validate() == nil {
		t.Error("accepted zero bins")
	}
}

func TestHonestOneHotAccepted(t *testing.T) {
	for _, m := range []int{1, 2, 8, 64} {
		p := params(m)
		for hot := 0; hot < m && hot < 4; hot++ {
			cs, err := ShareOneHot(p, hot, nil)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := ValidateClient(p, cs, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("M=%d hot=%d: honest client rejected", m, hot)
			}
		}
	}
}

func TestShareOneHotValidation(t *testing.T) {
	p := params(4)
	if _, err := ShareOneHot(p, -1, nil); err == nil {
		t.Error("accepted negative hot index")
	}
	if _, err := ShareOneHot(p, 4, nil); err == nil {
		t.Error("accepted out-of-range hot index")
	}
}

func TestIllegalInputsRejected(t *testing.T) {
	p := params(4)
	cases := map[string][]*field.Element{
		"two-hot":  {f.One(), f.One(), f.Zero(), f.Zero()},
		"all-zero": {f.Zero(), f.Zero(), f.Zero(), f.Zero()},
		"value-2":  {f.FromInt64(2), f.Zero(), f.Zero(), f.Zero()},
		"value-5":  {f.FromInt64(5), f.Zero(), f.Zero(), f.Zero()},
		"negative": {f.MinusOne(), f.One(), f.One(), f.Zero()},
	}
	for name, vec := range cases {
		cs, err := ShareVector(p, vec, nil)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := ValidateClient(p, cs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("%s: illegal input accepted by honest servers", name)
		}
	}
}

func TestShareVectorLengthValidation(t *testing.T) {
	if _, err := ShareVector(params(3), []*field.Element{f.One()}, nil); err == nil {
		t.Error("accepted short vector")
	}
}

// TestExclusionAttackSucceeds demonstrates Figure 1(a): a single corrupted
// server forces an honest client to fail validation. This is the attack the
// verifiable protocol prevents (see internal/vdp's drop-client tests).
func TestExclusionAttackSucceeds(t *testing.T) {
	p := params(8)
	cs, err := ShareOneHot(p, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	accepted, err := ExclusionAttack(p, cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accepted {
		t.Error("exclusion attack failed: honest client was still accepted (prob ≈ M/q)")
	}
}

// TestCollusionAttackSucceeds demonstrates Figure 1(b): a client-server
// coalition gets an arbitrarily illegal input past the sketch check.
func TestCollusionAttackSucceeds(t *testing.T) {
	p := params(4)
	illegal := []*field.Element{f.FromInt64(1000), f.Zero(), f.Zero(), f.Zero()} // 1000 votes
	accepted, err := CollusionAttack(p, illegal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !accepted {
		t.Error("collusion attack failed: forged sketches did not validate")
	}
}

func TestComputeSketchLengthValidation(t *testing.T) {
	p := params(3)
	ch, err := NewChallenge(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeSketch(ch, []*field.Element{f.One()}); err == nil {
		t.Error("accepted mismatched share vector")
	}
}

// BenchmarkSketchValidate measures the per-client sketch validation cost as
// a function of dimension — the PRIO/Poplar series of Figure 4.
func BenchmarkSketchValidate(b *testing.B) {
	for _, m := range []int{2, 16, 128, 1024} {
		m := m
		b.Run(sizeName(m), func(b *testing.B) {
			p := params(m)
			cs, err := ShareOneHot(p, 1, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := ValidateClient(p, cs, nil)
				if err != nil || !ok {
					b.Fatal("validation failed")
				}
			}
		})
	}
}

func sizeName(m int) string {
	return "M=" + itoa(m)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
