package verifiabledp

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, driving the experiment implementations in
// internal/experiments at Quick scale so `go test -bench=.` terminates in
// minutes. Run `go run ./cmd/vdpbench -scale standard` (or -scale paper)
// for the larger workloads; EXPERIMENTS.md records measured-vs-paper.

import (
	"errors"
	"testing"

	"repro/internal/experiments"
	"repro/internal/vdp"
)

// BenchmarkTable1 regenerates Table 1: per-stage latency of ΠBin
// (Σ-proof, Σ-verification, Morra, Aggregation, Check).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1AtScale(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: Σ-OR proof creation/verification
// cost as a function of ε (nb ∝ 1/ε²).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3AtScale(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: per-client one-hot validation
// cost vs dimension M, Σ-OR against the PRIO/Poplar sketch baseline.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4AtScale(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkTable2 regenerates the executable property matrix of Table 2
// (attack scenarios run against each protocol).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkMicroExp regenerates the §6 microbenchmark: one exponentiation
// in the finite-field vs elliptic-curve commitment group.
func BenchmarkMicroExp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Microbench()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkDPError regenerates the §7 error series: central O(1) error vs
// local O(√n).
func BenchmarkDPError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DPErrorAtScale(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkEndToEndCount measures a complete verifiable count (clients,
// curator, verifier, Morra, audit) at a small deployment size.
func BenchmarkEndToEndCount(b *testing.B) {
	bits := make([]bool, 16)
	for i := range bits {
		bits[i] = i%2 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Count(bits, Options{Coins: 16})
		if err != nil {
			b.Fatal(err)
		}
		if err := Audit(res.Public, res.Transcript); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndMPCHistogram measures a 2-server, 3-bin verifiable
// histogram end to end.
func BenchmarkEndToEndMPCHistogram(b *testing.B) {
	choices := []int{0, 1, 2, 2, 1, 0, 2, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Histogram(choices, 3, Options{Servers: 2, Coins: 8})
		if err != nil {
			b.Fatal(err)
		}
		if err := Audit(res.Public, res.Transcript); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheatDetection measures how quickly the verifier catches a
// biased-output prover — the cost of the security guarantee.
func BenchmarkCheatDetection(b *testing.B) {
	pub, err := Setup(Config{Provers: 2, Bins: 1, Coins: 8})
	if err != nil {
		b.Fatal(err)
	}
	choices := []int{1, 0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(pub, choices, &RunOptions{Malice: map[int]Malice{1: {OutputBias: 5}}})
		if !errors.Is(err, vdp.ErrProverCheat) {
			b.Fatal("cheat not detected")
		}
	}
}
