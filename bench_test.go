package verifiabledp

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, driving the experiment implementations in
// internal/experiments at Quick scale so `go test -bench=.` terminates in
// minutes. Run `go run ./cmd/vdpbench -scale standard` (or -scale paper)
// for the larger workloads; EXPERIMENTS.md records measured-vs-paper.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/store"
	"repro/internal/vdp"
)

// BenchmarkTable1 regenerates Table 1: per-stage latency of ΠBin
// (Σ-proof, Σ-verification, Morra, Aggregation, Check).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1AtScale(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: Σ-OR proof creation/verification
// cost as a function of ε (nb ∝ 1/ε²).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3AtScale(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: per-client one-hot validation
// cost vs dimension M, Σ-OR against the PRIO/Poplar sketch baseline.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4AtScale(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkTable2 regenerates the executable property matrix of Table 2
// (attack scenarios run against each protocol).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkMicroExp regenerates the §6 microbenchmark: one exponentiation
// in the finite-field vs elliptic-curve commitment group.
func BenchmarkMicroExp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Microbench()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkDPError regenerates the §7 error series: central O(1) error vs
// local O(√n).
func BenchmarkDPError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DPErrorAtScale(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkEndToEndCount measures a complete verifiable count (clients,
// curator, verifier, Morra, audit) at a small deployment size.
func BenchmarkEndToEndCount(b *testing.B) {
	bits := make([]bool, 16)
	for i := range bits {
		bits[i] = i%2 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Count(bits, Options{Coins: 16})
		if err != nil {
			b.Fatal(err)
		}
		if err := Audit(res.Public, res.Transcript); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndMPCHistogram measures a 2-server, 3-bin verifiable
// histogram end to end.
func BenchmarkEndToEndMPCHistogram(b *testing.B) {
	choices := []int{0, 1, 2, 2, 1, 0, 2, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Histogram(choices, 3, Options{Servers: 2, Coins: 8})
		if err != nil {
			b.Fatal(err)
		}
		if err := Audit(res.Public, res.Transcript); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWorkers sweeps the execution engine's worker-pool width on
// a fixed n=256-client verifiable count over P-256 (the workload of the
// parallel-speedup acceptance test; see EXPERIMENTS.md for recorded
// speedups). Each iteration is a complete end-to-end run: client submission
// generation, roster fixing, prover stages, and every verifier check.
func BenchmarkEngineWorkers(b *testing.B) {
	pub, err := Setup(Config{Provers: 1, Bins: 1, Coins: 32})
	if err != nil {
		b.Fatal(err)
	}
	choices := make([]int, 256)
	for i := range choices {
		if i%3 == 0 {
			choices[i] = 1
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(pub, choices, &RunOptions{Parallelism: workers})
				if err != nil {
					b.Fatal(err)
				}
				if res.Release.Raw[0] < 86 { // 86 true ones + non-negative noise
					b.Fatal("release below true count")
				}
			}
		})
	}
}

// BenchmarkBatchVerifyClients compares sequential per-client legality
// verification against the multi-client random-linear-combination batch
// (one multi-exponentiation for the whole board), at 1 and GOMAXPROCS
// workers, over a 256-client board.
func BenchmarkBatchVerifyClients(b *testing.B) {
	pub, err := Setup(Config{Provers: 1, Bins: 1, Coins: 8})
	if err != nil {
		b.Fatal(err)
	}
	const n = 256
	publics := make([]*ClientPublic, n)
	for i := 0; i < n; i++ {
		sub, err := pub.NewClientSubmission(i, i%2, nil)
		if err != nil {
			b.Fatal(err)
		}
		publics[i] = sub.Public
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			valid, _ := pub.FilterValidClients(publics)
			if len(valid) != n {
				b.Fatal("honest client rejected")
			}
		}
	})
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("batch/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := vdp.NewVerifierParallel(pub, workers)
				accepted, _ := v.VerifyClients(publics)
				if accepted != n {
					b.Fatal("honest client rejected")
				}
			}
		})
	}
}

// BenchmarkSessionSubmit measures the amortized cost of admitting one
// client over a 64-submission board. "eager" is the streaming Session path:
// every submission is verified the moment it arrives (verdict returned to
// the client, nothing left for Finalize to re-check). "batch-at-finalize"
// is the legacy roster fixing: submissions pile up unverified and one
// random-linear-combination Σ-OR batch decides the whole board at the end.
// The batch's ns/op is lower — that is exactly the latency-vs-throughput
// trade the Session API makes explicit — and the gap is the price of
// per-submission verdicts. Divide ns/op by 64 for per-submission cost.
// Note the arms are not perfectly symmetric: eager Submit also validates
// the K per-prover payload openings (which the batch path defers to the
// ingest stage at Finalize), so the measured gap slightly overstates the
// board-verification difference alone.
func BenchmarkSessionSubmit(b *testing.B) {
	pub, err := Setup(Config{Provers: 1, Bins: 1, Coins: 8})
	if err != nil {
		b.Fatal(err)
	}
	const n = 64
	subs := make([]*ClientSubmission, n)
	publics := make([]*ClientPublic, n)
	for i := 0; i < n; i++ {
		sub, err := pub.NewClientSubmission(i, i%2, nil)
		if err != nil {
			b.Fatal(err)
		}
		subs[i] = sub
		publics[i] = sub.Public
	}
	ctx := context.Background()
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sess, err := NewSession(pub, SessionOptions{})
			if err != nil {
				b.Fatal(err)
			}
			for _, sub := range subs {
				if err := sess.Submit(ctx, sub); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch-at-finalize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := vdp.NewVerifierParallel(pub, 0)
			accepted, _ := v.VerifyClients(publics)
			if accepted != n {
				b.Fatal("honest client rejected")
			}
		}
	})
}

// BenchmarkStoreReplay measures raw board-log replay throughput: 10k framed,
// CRC-checked records streamed back from disk. This bounds how fast a
// restarted server can re-read its bulletin board before any crypto runs.
func BenchmarkStoreReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "board.log")
	logFile, err := store.OpenFileLog(path, store.WithNoSync())
	if err != nil {
		b.Fatal(err)
	}
	const records = 10000
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < records; i++ {
		if err := logFile.Append(&store.Record{Kind: 1, Epoch: 0, Payload: payload}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := logFile.Replay(func(rec *store.Record) error {
			n++
			return nil
		})
		if err != nil || n != records {
			b.Fatalf("replay: n=%d err=%v", n, err)
		}
	}
	b.StopTimer()
	logFile.Close()
	b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkSessionRecovery measures ResumeSession over a file-backed board
// of 64 eagerly-verified submissions: the time from "process restarted" to
// "session ready to accept client 65". Verdicts are already persisted, so
// recovery is pure replay + decode — no proof re-verification.
func BenchmarkSessionRecovery(b *testing.B) {
	pub, err := Setup(Config{Provers: 1, Bins: 1, Coins: 8})
	if err != nil {
		b.Fatal(err)
	}
	const n = 64
	path := filepath.Join(b.TempDir(), "board.log")
	logFile, err := store.OpenFileLog(path, store.WithNoSync())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	sess, err := NewSession(pub, SessionOptions{Store: logFile})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		sub, err := pub.NewClientSubmission(i, i%2, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Submit(ctx, sub); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resumed, err := vdp.ResumeSession(ctx, pub, SessionOptions{Store: logFile})
		if err != nil {
			b.Fatal(err)
		}
		if resumed.Submitted() != n {
			b.Fatalf("recovered %d submissions, want %d", resumed.Submitted(), n)
		}
	}
	b.StopTimer()
	logFile.Close()
}

// BenchmarkCheatDetection measures how quickly the verifier catches a
// biased-output prover — the cost of the security guarantee.
func BenchmarkCheatDetection(b *testing.B) {
	pub, err := Setup(Config{Provers: 2, Bins: 1, Coins: 8})
	if err != nil {
		b.Fatal(err)
	}
	choices := []int{1, 0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(pub, choices, &RunOptions{Malice: map[int]Malice{1: {OutputBias: 5}}})
		if !errors.Is(err, vdp.ErrProverCheat) {
			b.Fatal("cheat not detected")
		}
	}
}
