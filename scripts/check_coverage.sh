#!/bin/sh
# check_coverage.sh — run the test suite with coverage and fail if total
# statement coverage drops below the floor. The floor trails the measured
# baseline by a small margin so legitimate refactors don't flap, but a PR
# that lands untested code moves the total enough to trip it.
#
# Usage: check_coverage.sh [floor-percent]   (default 74.0)
set -eu
floor="${1:-74.0}"
profile="$(mktemp)"
trap 'rm -f "$profile"' EXIT

go test -count=1 -coverprofile="$profile" ./...
total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "total statement coverage: ${total}% (floor ${floor}%)"
if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t < f) }'; then
    echo "coverage check FAILED: ${total}% is below the ${floor}% floor"
    exit 1
fi
echo "coverage check passed"
