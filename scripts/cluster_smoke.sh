#!/bin/bash
# cluster_smoke.sh — multi-process cluster integration smoke.
#
# Boots a real 3-node cluster as separate OS processes: three vdpserver
# backends in node mode (one shard each, durable board + merged-seal logs),
# one vdprouter in front. Floods batched submissions through vdpclient
# against the router, lets the router drive the finalize-merge handshake on
# shutdown, then runs the cross-node audit (vdprouter -audit) against the
# restarted backends — the same sequence an operator runs, so a regression
# anywhere in the wire path, the routing, the merge RPC, or the audit
# fetch fails here even when the in-process tests pass.
#
# Usage: scripts/cluster_smoke.sh [clients] [batch]
set -eu

CLIENTS="${1:-48}"
BATCH="${2:-16}"
NODES=3
BINS=2
COINS=8

WORK="$(mktemp -d)"
BIN="$WORK/bin"
mkdir -p "$BIN"
PIDS=""

cleanup() {
    # shellcheck disable=SC2086
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

say() { printf '\n== %s\n' "$*"; }

say "building binaries"
go build -o "$BIN/vdpserver" ./cmd/vdpserver
go build -o "$BIN/vdprouter" ./cmd/vdprouter
go build -o "$BIN/vdpclient" ./cmd/vdpclient

# Wait until a TCP endpoint accepts connections (the binaries log their
# listen line before serving, so poll the port itself).
wait_port() {
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            exec 3>&- 3<&- 2>/dev/null || true
            return 0
        fi
        sleep 0.1
    done
    echo "port $1 never came up" >&2
    return 1
}

say "booting $NODES backend nodes"
BACKENDS=""
i=0
while [ "$i" -lt "$NODES" ]; do
    port=$((7410 + i))
    mkdir -p "$WORK/node$i"
    "$BIN/vdpserver" -addr "127.0.0.1:$port" -store-dir "$WORK/node$i" \
        -shard-index "$i" -shard-count "$NODES" \
        -bins "$BINS" -coins "$COINS" >"$WORK/node$i.log" 2>&1 &
    PIDS="$PIDS $!"
    BACKENDS="${BACKENDS:+$BACKENDS,}127.0.0.1:$port"
    i=$((i + 1))
done
i=0
while [ "$i" -lt "$NODES" ]; do wait_port $((7410 + i)); i=$((i + 1)); done

say "booting router in front of $BACKENDS"
"$BIN/vdprouter" -addr 127.0.0.1:7400 -backends "$BACKENDS" \
    -clients "$CLIENTS" -bins "$BINS" -coins "$COINS" \
    -retries 5 -backoff 50ms >"$WORK/router.log" 2>&1 &
ROUTER_PID=$!
PIDS="$PIDS $ROUTER_PID"
wait_port 7400

say "starting live audit tail against the backend nodes"
# The follower attaches before any submission exists, verifies every record
# at arrival while the flood runs, and exits 0 once it has certified the
# merged epoch — the vdpclient -follow mode an external auditor would run.
"$BIN/vdpclient" -follow "$BACKENDS" -follow-epochs 1 \
    -bins "$BINS" -coins "$COINS" -retries 3 -backoff 50ms \
    >"$WORK/follow.log" 2>&1 &
FOLLOW_PID=$!
PIDS="$PIDS $FOLLOW_PID"

say "flooding $CLIENTS submissions in batches of $BATCH through the router"
id=0
while [ "$id" -lt "$CLIENTS" ]; do
    n=$BATCH
    [ $((id + n)) -gt "$CLIENTS" ] && n=$((CLIENTS - id))
    "$BIN/vdpclient" -addr 127.0.0.1:7400 -id "$id" -batch "$n" \
        -choice $((id % BINS)) -bins "$BINS" -coins "$COINS" \
        -retries 3 -backoff 50ms
    id=$((id + n))
done

say "router reached its target; waiting for finalize-merge"
# The router exits on its own after -clients accepted submissions: it seals
# every node, merges the transcripts in shard order, replicates the merged
# seal, and self-audits before exiting 0.
router_ok=0
for _ in $(seq 1 300); do
    if ! kill -0 "$ROUTER_PID" 2>/dev/null; then router_ok=1; break; fi
    sleep 0.1
done
if [ "$router_ok" -ne 1 ]; then
    echo "router did not finalize after the flood" >&2
    cat "$WORK/router.log" >&2
    exit 1
fi
if ! wait "$ROUTER_PID"; then
    echo "router exited non-zero" >&2
    cat "$WORK/router.log" >&2
    exit 1
fi
grep -E "merged transcript audit: PASSED" "$WORK/router.log" || {
    echo "router log missing merged-audit line" >&2
    cat "$WORK/router.log" >&2
    exit 1
}

say "waiting for the live audit tail to certify the merged epoch"
follow_ok=0
for _ in $(seq 1 300); do
    if ! kill -0 "$FOLLOW_PID" 2>/dev/null; then follow_ok=1; break; fi
    sleep 0.1
done
if [ "$follow_ok" -ne 1 ] || ! wait "$FOLLOW_PID"; then
    echo "live audit tail did not certify the merged epoch" >&2
    cat "$WORK/follow.log" >&2
    exit 1
fi
grep -E "live audit: merged epoch 0 PASSED" "$WORK/follow.log" || {
    echo "follow log missing live-audit certification line" >&2
    cat "$WORK/follow.log" >&2
    exit 1
}

say "cross-node audit against the live backends"
"$BIN/vdprouter" -backends "$BACKENDS" -bins "$BINS" -coins "$COINS" -audit \
    | tee "$WORK/audit.log"
grep -q "cross-node audit: PASSED" "$WORK/audit.log"

say "offline per-node audit of each backend's durable board log"
i=0
while [ "$i" -lt "$NODES" ]; do
    "$BIN/vdpclient" -audit-store "$WORK/node$i" -bins "$BINS" -coins "$COINS"
    i=$((i + 1))
done

# ---------------------------------------------------------------------------
# Failover lane: two shards as primary~standby replica pairs, every ack
# mirrored to the standby before the client hears it. Halfway through the
# flood shard 0's primary is killed — no operator action follows: the router
# must promote the standby through the fenced handshake and keep admitting,
# the live follower must ride the replica switch and still certify the
# merged epoch, and the promoted standby's durable store must pass the
# offline audit as an ordinary node directory.
# ---------------------------------------------------------------------------
RSHARDS=2
RCLIENTS=$((CLIENTS / 2))
[ "$RCLIENTS" -lt 8 ] && RCLIENTS=8
RBATCH=$((RCLIENTS / 4))

say "failover lane: booting $RSHARDS replica pairs (primary~standby, mirrored acks)"
RSPECS=""
i=0
while [ "$i" -lt "$RSHARDS" ]; do
    pport=$((7420 + i))
    sport=$((7430 + i))
    mkdir -p "$WORK/rpr$i" "$WORK/rsb$i"
    "$BIN/vdpserver" -addr "127.0.0.1:$sport" -store-dir "$WORK/rsb$i" \
        -shard-index "$i" -shard-count "$RSHARDS" \
        -replica-of "127.0.0.1:$pport" \
        -bins "$BINS" -coins "$COINS" >"$WORK/rsb$i.log" 2>&1 &
    PIDS="$PIDS $!"
    wait_port "$sport"
    "$BIN/vdpserver" -addr "127.0.0.1:$pport" -store-dir "$WORK/rpr$i" \
        -shard-index "$i" -shard-count "$RSHARDS" \
        -standby "127.0.0.1:$sport" \
        -bins "$BINS" -coins "$COINS" >"$WORK/rpr$i.log" 2>&1 &
    pid=$!
    PIDS="$PIDS $pid"
    [ "$i" -eq 0 ] && RPR0_PID=$pid
    wait_port "$pport"
    RSPECS="${RSPECS:+$RSPECS,}127.0.0.1:$pport~127.0.0.1:$sport"
    i=$((i + 1))
done

say "failover lane: booting router in front of $RSPECS"
"$BIN/vdprouter" -addr 127.0.0.1:7401 -backends "$RSPECS" \
    -clients "$RCLIENTS" -bins "$BINS" -coins "$COINS" \
    -retries 5 -backoff 50ms -probe 200ms >"$WORK/rrouter.log" 2>&1 &
RROUTER_PID=$!
PIDS="$PIDS $RROUTER_PID"
wait_port 7401

say "failover lane: live audit tail against the replica pairs"
"$BIN/vdpclient" -follow "$RSPECS" -follow-epochs 1 \
    -bins "$BINS" -coins "$COINS" -retries 3 -backoff 50ms \
    >"$WORK/rfollow.log" 2>&1 &
RFOLLOW_PID=$!
PIDS="$PIDS $RFOLLOW_PID"

say "failover lane: flooding $RCLIENTS submissions, killing shard 0's primary mid-flood"
id=0
killed=0
while [ "$id" -lt "$RCLIENTS" ]; do
    if [ "$killed" -eq 0 ] && [ "$id" -ge $((RCLIENTS / 2)) ]; then
        # SIGKILL: a crash, not a drain — a SIGTERM'd primary keeps answering
        # (with errors) through its grace window, which is maintenance, not
        # the failure this lane drills.
        kill -9 "$RPR0_PID" 2>/dev/null || true
        killed=1
        echo "-- killed shard 0 primary (pid $RPR0_PID) after $id submissions"
    fi
    n=$RBATCH
    [ $((id + n)) -gt "$RCLIENTS" ] && n=$((RCLIENTS - id))
    "$BIN/vdpclient" -addr 127.0.0.1:7401 -id "$id" -batch "$n" \
        -choice $((id % BINS)) -bins "$BINS" -coins "$COINS" \
        -retries 5 -backoff 100ms
    id=$((id + n))
done

say "failover lane: waiting for the router to finalize across the failover"
rrouter_ok=0
for _ in $(seq 1 300); do
    if ! kill -0 "$RROUTER_PID" 2>/dev/null; then rrouter_ok=1; break; fi
    sleep 0.1
done
if [ "$rrouter_ok" -ne 1 ] || ! wait "$RROUTER_PID"; then
    echo "router did not finalize across the failover" >&2
    cat "$WORK/rrouter.log" >&2
    exit 1
fi
grep -E "merged transcript audit: PASSED" "$WORK/rrouter.log" || {
    echo "failover router log missing merged-audit line" >&2
    cat "$WORK/rrouter.log" >&2
    exit 1
}

say "failover lane: requiring promotion evidence from the standby"
grep -E "standby PROMOTED" "$WORK/rsb0.log" || {
    echo "shard 0's standby was never promoted" >&2
    cat "$WORK/rsb0.log" >&2
    exit 1
}
if grep -E "standby PROMOTED" "$WORK/rsb1.log" >/dev/null 2>&1; then
    echo "the healthy shard's standby was promoted too" >&2
    exit 1
fi

say "failover lane: waiting for the live audit tail (it rode through the failover)"
rfollow_ok=0
for _ in $(seq 1 300); do
    if ! kill -0 "$RFOLLOW_PID" 2>/dev/null; then rfollow_ok=1; break; fi
    sleep 0.1
done
if [ "$rfollow_ok" -ne 1 ] || ! wait "$RFOLLOW_PID"; then
    echo "live audit tail did not certify the failed-over epoch" >&2
    cat "$WORK/rfollow.log" >&2
    exit 1
fi
grep -E "live audit: merged epoch 0 PASSED" "$WORK/rfollow.log" || {
    echo "failover follow log missing live-audit certification line" >&2
    cat "$WORK/rfollow.log" >&2
    exit 1
}

say "failover lane: cross-node audit across the surviving topology"
# Shard 0 is now served by its promoted standby; the audit lists it directly.
"$BIN/vdprouter" -backends "127.0.0.1:7430,127.0.0.1:7421" \
    -bins "$BINS" -coins "$COINS" -audit | tee "$WORK/raudit.log"
grep -q "cross-node audit: PASSED" "$WORK/raudit.log"

say "failover lane: offline audit of the promoted standby's durable store"
"$BIN/vdpclient" -audit-store "$WORK/rsb0" -bins "$BINS" -coins "$COINS"
"$BIN/vdpclient" -audit-store "$WORK/rpr1" -bins "$BINS" -coins "$COINS"

say "cluster smoke passed: $CLIENTS clients across $NODES nodes, merged, audited; failover lane promoted shard 0's standby mid-flood with zero lost submissions"
