#!/bin/bash
# cluster_smoke.sh — multi-process cluster integration smoke.
#
# Boots a real 3-node cluster as separate OS processes: three vdpserver
# backends in node mode (one shard each, durable board + merged-seal logs),
# one vdprouter in front. Floods batched submissions through vdpclient
# against the router, lets the router drive the finalize-merge handshake on
# shutdown, then runs the cross-node audit (vdprouter -audit) against the
# restarted backends — the same sequence an operator runs, so a regression
# anywhere in the wire path, the routing, the merge RPC, or the audit
# fetch fails here even when the in-process tests pass.
#
# Usage: scripts/cluster_smoke.sh [clients] [batch]
set -eu

CLIENTS="${1:-48}"
BATCH="${2:-16}"
NODES=3
BINS=2
COINS=8

WORK="$(mktemp -d)"
BIN="$WORK/bin"
mkdir -p "$BIN"
PIDS=""

cleanup() {
    # shellcheck disable=SC2086
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

say() { printf '\n== %s\n' "$*"; }

say "building binaries"
go build -o "$BIN/vdpserver" ./cmd/vdpserver
go build -o "$BIN/vdprouter" ./cmd/vdprouter
go build -o "$BIN/vdpclient" ./cmd/vdpclient

# Wait until a TCP endpoint accepts connections (the binaries log their
# listen line before serving, so poll the port itself).
wait_port() {
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            exec 3>&- 3<&- 2>/dev/null || true
            return 0
        fi
        sleep 0.1
    done
    echo "port $1 never came up" >&2
    return 1
}

say "booting $NODES backend nodes"
BACKENDS=""
i=0
while [ "$i" -lt "$NODES" ]; do
    port=$((7410 + i))
    mkdir -p "$WORK/node$i"
    "$BIN/vdpserver" -addr "127.0.0.1:$port" -store-dir "$WORK/node$i" \
        -shard-index "$i" -shard-count "$NODES" \
        -bins "$BINS" -coins "$COINS" >"$WORK/node$i.log" 2>&1 &
    PIDS="$PIDS $!"
    BACKENDS="${BACKENDS:+$BACKENDS,}127.0.0.1:$port"
    i=$((i + 1))
done
i=0
while [ "$i" -lt "$NODES" ]; do wait_port $((7410 + i)); i=$((i + 1)); done

say "booting router in front of $BACKENDS"
"$BIN/vdprouter" -addr 127.0.0.1:7400 -backends "$BACKENDS" \
    -clients "$CLIENTS" -bins "$BINS" -coins "$COINS" \
    -retries 5 -backoff 50ms >"$WORK/router.log" 2>&1 &
ROUTER_PID=$!
PIDS="$PIDS $ROUTER_PID"
wait_port 7400

say "starting live audit tail against the backend nodes"
# The follower attaches before any submission exists, verifies every record
# at arrival while the flood runs, and exits 0 once it has certified the
# merged epoch — the vdpclient -follow mode an external auditor would run.
"$BIN/vdpclient" -follow "$BACKENDS" -follow-epochs 1 \
    -bins "$BINS" -coins "$COINS" -retries 3 -backoff 50ms \
    >"$WORK/follow.log" 2>&1 &
FOLLOW_PID=$!
PIDS="$PIDS $FOLLOW_PID"

say "flooding $CLIENTS submissions in batches of $BATCH through the router"
id=0
while [ "$id" -lt "$CLIENTS" ]; do
    n=$BATCH
    [ $((id + n)) -gt "$CLIENTS" ] && n=$((CLIENTS - id))
    "$BIN/vdpclient" -addr 127.0.0.1:7400 -id "$id" -batch "$n" \
        -choice $((id % BINS)) -bins "$BINS" -coins "$COINS" \
        -retries 3 -backoff 50ms
    id=$((id + n))
done

say "router reached its target; waiting for finalize-merge"
# The router exits on its own after -clients accepted submissions: it seals
# every node, merges the transcripts in shard order, replicates the merged
# seal, and self-audits before exiting 0.
router_ok=0
for _ in $(seq 1 300); do
    if ! kill -0 "$ROUTER_PID" 2>/dev/null; then router_ok=1; break; fi
    sleep 0.1
done
if [ "$router_ok" -ne 1 ]; then
    echo "router did not finalize after the flood" >&2
    cat "$WORK/router.log" >&2
    exit 1
fi
if ! wait "$ROUTER_PID"; then
    echo "router exited non-zero" >&2
    cat "$WORK/router.log" >&2
    exit 1
fi
grep -E "merged transcript audit: PASSED" "$WORK/router.log" || {
    echo "router log missing merged-audit line" >&2
    cat "$WORK/router.log" >&2
    exit 1
}

say "waiting for the live audit tail to certify the merged epoch"
follow_ok=0
for _ in $(seq 1 300); do
    if ! kill -0 "$FOLLOW_PID" 2>/dev/null; then follow_ok=1; break; fi
    sleep 0.1
done
if [ "$follow_ok" -ne 1 ] || ! wait "$FOLLOW_PID"; then
    echo "live audit tail did not certify the merged epoch" >&2
    cat "$WORK/follow.log" >&2
    exit 1
fi
grep -E "live audit: merged epoch 0 PASSED" "$WORK/follow.log" || {
    echo "follow log missing live-audit certification line" >&2
    cat "$WORK/follow.log" >&2
    exit 1
}

say "cross-node audit against the live backends"
"$BIN/vdprouter" -backends "$BACKENDS" -bins "$BINS" -coins "$COINS" -audit \
    | tee "$WORK/audit.log"
grep -q "cross-node audit: PASSED" "$WORK/audit.log"

say "offline per-node audit of each backend's durable board log"
i=0
while [ "$i" -lt "$NODES" ]; do
    "$BIN/vdpclient" -audit-store "$WORK/node$i" -bins "$BINS" -coins "$COINS"
    i=$((i + 1))
done

say "cluster smoke passed: $CLIENTS clients across $NODES nodes, merged, audited"
