#!/bin/sh
# check_docs.sh — fail if README.md or ARCHITECTURE.md reference Go
# identifiers (in backticked code spans or code fences) that no longer
# exist anywhere in the Go sources. Keeps the docs from silently rotting
# as the code is refactored.
#
# Heuristic: every backtick-delimited token that looks like an exported Go
# identifier (optionally qualified: `pkg.Ident`, `Ident.Method`) must appear
# as a word somewhere in a .go file. Flags, paths, shell commands, etc. do
# not match the pattern and are skipped.
set -u
fail=0
for doc in README.md ARCHITECTURE.md; do
    [ -f "$doc" ] || { echo "missing $doc"; fail=1; continue; }
    idents=$(grep -o '`[A-Za-z][A-Za-z0-9_.]*`' "$doc" | tr -d '`' | sort -u)
    for id in $idents; do
        # Check each dot-separated component that starts with an uppercase
        # letter (exported Go identifiers); skip everything else.
        for part in $(printf '%s' "$id" | tr '.' ' '); do
            case $part in
                [A-Z]*) ;;
                *) continue ;;
            esac
            if ! grep -rqw --include='*.go' "$part" .; then
                echo "$doc references \`$id\` but no Go source mentions $part"
                fail=1
            fi
        done
    done
done
if [ "$fail" -ne 0 ]; then
    echo "doc check FAILED: fix or remove the stale references above"
    exit 1
fi
echo "doc check passed"
