#!/bin/sh
# check_allocs.sh — allocation regression guard for the P-256 commit hot
# path. The fp256 fast backend brought BenchmarkCommit/p256 from 4161
# allocs/op (math/big elements) to 1; this guard pins allocs/op under a
# deliberately generous ceiling so a refactor that silently routes P-256
# commitments back through the big.Int path (thousands of allocs) fails CI,
# while harmless changes (a scalar copy here or there) do not flap.
#
# Usage: check_allocs.sh [ceiling]   (default 16)
set -eu
ceiling="${1:-16}"

out=$(go test ./internal/pedersen -run '^$' -bench 'BenchmarkCommit/p256' \
    -benchmem -benchtime 200x -count=1)
echo "$out"

allocs=$(echo "$out" | awk '$1 ~ /^BenchmarkCommit\/p256/ {
    for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
}')
if [ -z "$allocs" ]; then
    echo "alloc check FAILED: could not find BenchmarkCommit/p256 allocs/op in output"
    exit 1
fi
echo "commit allocs/op: ${allocs} (ceiling ${ceiling})"
if [ "$allocs" -gt "$ceiling" ]; then
    echo "alloc check FAILED: ${allocs} allocs/op exceeds the ${ceiling} ceiling —"
    echo "the big.Int path is back on the P-256 commit hot path"
    exit 1
fi
echo "alloc check passed"
