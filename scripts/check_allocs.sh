#!/bin/sh
# check_allocs.sh — allocation regression guards for the hot paths.
#
# Each guard runs one Go benchmark and pins its allocs/op under a
# deliberately generous ceiling, so a refactor that silently reintroduces
# an allocation storm fails CI while harmless changes (a scalar copy here
# or there) do not flap:
#
#   commit        BenchmarkCommit/p256 (internal/pedersen). The fp256 fast
#                 backend brought this from 4161 allocs/op (math/big) to 1;
#                 the ceiling catches the big.Int path coming back.
#   decode        BenchmarkDecodeSubmissionBatch (internal/vdp): one
#                 64-submission batch frame through the wire decoder.
#                 ~1990 allocs/op (≈31 per submission) when the guard
#                 landed; the ceiling catches a per-byte or per-element
#                 allocation pattern sneaking into the parse loop.
#   submit-batch  BenchmarkSubmitBatch (internal/vdp): a 64-client batch
#                 through Session.SubmitBatch (admission + folded Σ-OR
#                 verification). ~4300 allocs/op (≈67 per client) when the
#                 guard landed; the ceiling catches the batch path
#                 degenerating into per-client engine tasks or per-client
#                 encode buffers.
#
# Usage: check_allocs.sh [commit-ceiling]   (default 16)
set -eu
commit_ceiling="${1:-16}"
decode_ceiling=6000
submit_ceiling=16000

fail=0

# check <label> <package> <bench-regex> <bench-name-prefix> <ceiling> <hint>
check() {
    label="$1"; pkg="$2"; bench="$3"; prefix="$4"; ceiling="$5"; hint="$6"
    out=$(go test "$pkg" -run '^$' -bench "$bench" -benchmem -benchtime 50x -count=1)
    echo "$out"
    allocs=$(echo "$out" | awk -v p="$prefix" '$1 ~ "^"p {
        for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
    }')
    if [ -z "$allocs" ]; then
        echo "alloc check FAILED: could not find ${prefix} allocs/op in output"
        fail=1
        return
    fi
    echo "${label} allocs/op: ${allocs} (ceiling ${ceiling})"
    if [ "$allocs" -gt "$ceiling" ]; then
        echo "alloc check FAILED: ${label} at ${allocs} allocs/op exceeds the ${ceiling} ceiling — ${hint}"
        fail=1
    fi
}

check "commit" ./internal/pedersen 'BenchmarkCommit/p256' 'BenchmarkCommit/p256' \
    "$commit_ceiling" "the big.Int path is back on the P-256 commit hot path"
check "decode" ./internal/vdp 'BenchmarkDecodeSubmissionBatch' 'BenchmarkDecodeSubmissionBatch' \
    "$decode_ceiling" "the batch-frame decoder is allocating per element again"
check "submit-batch" ./internal/vdp 'BenchmarkSubmitBatch$' 'BenchmarkSubmitBatch' \
    "$submit_ceiling" "SubmitBatch is back to per-client tasks or per-client buffers"

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "alloc checks passed"
