#!/bin/sh
# check_bench_json.sh — validate a vdp-bench JSON document (stdin or $1)
# against the vdp-bench/3 schema: every benchmark entry must carry its
# batch_size and node_count metadata and an unconditional per_item_ns
# consistent with ns_per_op. This is what CI runs over a fresh
# `vdpbench -json`, so a schema regression (an entry missing per_item_ns,
# a batch benchmark that forgot its size, a cluster entry without its node
# count) fails before a malformed BENCH_<n>.json gets recorded.
#
# Entry names must also be unique: the sketch entries added for BENCH_9.json
# (sketch-submit-batch, sketch-finalize, sketch-query-topk) share the
# registry with the crypto hot-path entries, and a copy-pasted duplicate
# name would make one snapshot silently shadow the other in any tooling
# that keys on it.
#
# Usage: vdpbench -json | check_bench_json.sh
#        check_bench_json.sh BENCH_9.json
set -eu

input="${1:--}"
if [ "$input" = "-" ]; then
    # The python program below arrives on stdin via the heredoc, so the
    # document itself cannot also ride stdin: buffer it to a file first.
    buffered="$(mktemp)"
    trap 'rm -f "$buffered"' EXIT
    cat >"$buffered"
    input="$buffered"
fi
python3 - "$input" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))

def fail(msg):
    print(f"bench JSON check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)

if doc.get("schema") != "vdp-bench/3":
    fail(f"schema is {doc.get('schema')!r}, want 'vdp-bench/3'")
entries = doc.get("benchmarks")
if not entries:
    fail("no benchmark entries")
names = [e.get("name", "<unnamed>") for e in entries]
dupes = sorted({n for n in names if names.count(n) > 1})
if dupes:
    fail(f"duplicate entry names: {', '.join(dupes)}")
for e in entries:
    name = e.get("name", "<unnamed>")
    for key in ("name", "n", "ns_per_op", "us_per_op", "allocs_per_op",
                "bytes_per_op", "batch_size", "per_item_ns", "node_count"):
        if key not in e:
            fail(f"entry {name}: missing {key}")
    if e["batch_size"] < 1:
        fail(f"entry {name}: batch_size {e['batch_size']} < 1")
    if e["node_count"] < 1:
        fail(f"entry {name}: node_count {e['node_count']} < 1")
    if e["per_item_ns"] <= 0:
        fail(f"entry {name}: per_item_ns {e['per_item_ns']} <= 0")
    want = e["ns_per_op"] / e["batch_size"]
    if abs(e["per_item_ns"] - want) > max(1.0, 0.01 * want):
        fail(f"entry {name}: per_item_ns {e['per_item_ns']} != ns_per_op/batch_size {want:.1f}")
print(f"bench JSON check passed: {len(entries)} entries, schema {doc['schema']}")
EOF
