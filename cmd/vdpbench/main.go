// Command vdpbench regenerates the paper's evaluation tables and figures
// from the reimplemented system.
//
// Usage:
//
//	vdpbench [-scale quick|standard|paper] [-parallel 1,2,4,8]
//	         [-only table1,figure3,figure4,table2,micro,dperror,parallel,durability]
//
// The default runs every experiment at quick scale (seconds). Standard
// scale takes minutes; paper scale uses the paper's literal workload sizes
// (n = 10^6 clients, nb = 262144 coins) and can take hours with math/big
// arithmetic — see EXPERIMENTS.md for recorded results. The parallel
// experiment sweeps the execution engine's worker-pool widths (-parallel
// overrides the swept widths).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick|standard|paper")
	onlyFlag := flag.String("only", "", "comma-separated subset: table1,figure3,figure4,table2,micro,dperror,parallel,durability")
	parallelFlag := flag.String("parallel", "", "comma-separated worker counts for the engine sweep (default 1,2,4,8)")
	flag.Parse()

	var workers []int
	if *parallelFlag != "" {
		for _, s := range strings.Split(*parallelFlag, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || w < 1 {
				fmt.Fprintf(os.Stderr, "invalid -parallel entry %q\n", s)
				os.Exit(2)
			}
			workers = append(workers, w)
		}
	}

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, name := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	type experiment struct {
		name string
		run  func() (interface{ Format() string }, error)
	}
	exps := []experiment{
		{"table1", func() (interface{ Format() string }, error) { return experiments.Table1AtScale(scale) }},
		{"figure3", func() (interface{ Format() string }, error) { return experiments.Figure3AtScale(scale) }},
		{"figure4", func() (interface{ Format() string }, error) { return experiments.Figure4AtScale(scale) }},
		{"table2", func() (interface{ Format() string }, error) { return experiments.Table2() }},
		{"micro", func() (interface{ Format() string }, error) { return experiments.Microbench() }},
		{"dperror", func() (interface{ Format() string }, error) { return experiments.DPErrorAtScale(scale) }},
		{"parallel", func() (interface{ Format() string }, error) { return experiments.ParallelSweepAtScale(scale, workers) }},
		{"durability", func() (interface{ Format() string }, error) { return experiments.DurabilitySweepAtScale(scale) }},
	}

	fmt.Printf("verifiable-dp benchmark suite (scale=%s)\n", scale)
	fmt.Println(strings.Repeat("=", 72))
	failed := false
	for _, e := range exps {
		if !selected(e.name) {
			continue
		}
		start := time.Now()
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "[%s] FAILED: %v\n", e.name, err)
			failed = true
			continue
		}
		fmt.Printf("\n[%s] (took %v)\n%s\n", e.name, time.Since(start).Round(time.Millisecond), res.Format())
	}
	if failed {
		os.Exit(1)
	}
}
