// Command vdpbench regenerates the paper's evaluation tables and figures
// from the reimplemented system.
//
// Usage:
//
//	vdpbench [-scale quick|standard|paper] [-parallel 1,2,4,8] [-shards 1,2,4,8] [-nodes 1,2,3]
//	         [-only table1,figure3,figure4,table2,micro,dperror,parallel,durability,sharding,flood,cluster,failover,hh]
//	vdpbench -json   > BENCH_<pr>.json
//
// The default runs every experiment at quick scale (seconds). Standard
// scale takes minutes; paper scale uses the paper's literal workload sizes
// (n = 10^6 clients, nb = 262144 coins) and can take hours with math/big
// arithmetic — see EXPERIMENTS.md for recorded results. The parallel
// experiment sweeps the execution engine's worker-pool widths (-parallel
// overrides the swept widths); the sharding experiment sweeps the sharded
// session's shard counts (-shards overrides them), measuring front-door
// lock contention and the merged finalize/audit path; the cluster
// experiment boots real loopback TCP clusters (router + K nodes, -nodes
// overrides the swept sizes) and measures the full wire path, the
// finalize-merge handshake and the cross-node audit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick|standard|paper")
	onlyFlag := flag.String("only", "", "comma-separated subset: table1,figure3,figure4,table2,micro,dperror,parallel,durability,sharding,flood,cluster,failover,hh")
	parallelFlag := flag.String("parallel", "", "comma-separated worker counts for the engine sweep (default 1,2,4,8)")
	shardsFlag := flag.String("shards", "", "comma-separated shard counts for the sharding sweep (default 1,2,4,8)")
	nodesFlag := flag.String("nodes", "", "comma-separated node counts for the cluster sweep (default scale-dependent)")
	jsonFlag := flag.Bool("json", false, "emit the machine-readable crypto hot-path snapshot (commit/verify/submit) as JSON on stdout and exit; see BENCH_5.json")
	flag.Parse()

	if *jsonFlag {
		out, err := experiments.BenchJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}

	workers, err := parseCounts(*parallelFlag, "-parallel")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	shardCounts, err := parseCounts(*shardsFlag, "-shards")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	nodeCounts, err := parseCounts(*nodesFlag, "-nodes")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, name := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	type experiment struct {
		name string
		run  func() (interface{ Format() string }, error)
	}
	exps := []experiment{
		{"table1", func() (interface{ Format() string }, error) { return experiments.Table1AtScale(scale) }},
		{"figure3", func() (interface{ Format() string }, error) { return experiments.Figure3AtScale(scale) }},
		{"figure4", func() (interface{ Format() string }, error) { return experiments.Figure4AtScale(scale) }},
		{"table2", func() (interface{ Format() string }, error) { return experiments.Table2() }},
		{"micro", func() (interface{ Format() string }, error) { return experiments.Microbench() }},
		{"dperror", func() (interface{ Format() string }, error) { return experiments.DPErrorAtScale(scale) }},
		{"parallel", func() (interface{ Format() string }, error) { return experiments.ParallelSweepAtScale(scale, workers) }},
		{"durability", func() (interface{ Format() string }, error) { return experiments.DurabilitySweepAtScale(scale) }},
		{"sharding", func() (interface{ Format() string }, error) {
			return experiments.ShardingSweepAtScale(scale, shardCounts)
		}},
		{"flood", func() (interface{ Format() string }, error) { return experiments.FloodAtScale(scale) }},
		{"cluster", func() (interface{ Format() string }, error) {
			return experiments.ClusterSweepAtScale(scale, nodeCounts)
		}},
		{"failover", func() (interface{ Format() string }, error) { return experiments.FailoverAtScale(scale) }},
		{"hh", func() (interface{ Format() string }, error) { return experiments.HeavyHittersAtScale(scale) }},
	}

	fmt.Printf("verifiable-dp benchmark suite (scale=%s)\n", scale)
	fmt.Println(strings.Repeat("=", 72))
	failed := false
	for _, e := range exps {
		if !selected(e.name) {
			continue
		}
		start := time.Now()
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "[%s] FAILED: %v\n", e.name, err)
			failed = true
			continue
		}
		fmt.Printf("\n[%s] (took %v)\n%s\n", e.name, time.Since(start).Round(time.Millisecond), res.Format())
	}
	if failed {
		os.Exit(1)
	}
}

// parseCounts parses a comma-separated list of positive counts.
func parseCounts(arg, flagName string) ([]int, error) {
	if arg == "" {
		return nil, nil
	}
	var out []int
	for _, s := range strings.Split(arg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid %s entry %q", flagName, s)
		}
		out = append(out, n)
	}
	return out, nil
}
