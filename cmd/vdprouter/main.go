// Command vdprouter is the stateless front door of a multi-node
// verifiable-DP cluster: K vdpserver processes each serve one shard
// (-shard-index i -shard-count K), and the router speaks the ordinary
// client wire protocol on the outside while routing every submission to
// the shard that owns it (vdp.ShardOf over the client ID, peeked at a
// fixed offset — the router never decodes a proof). A "submit-batch"
// frame is partitioned into per-shard sub-batches forwarded concurrently,
// and the verdicts come back reassembled in the caller's original order.
//
// Once -clients submissions are accepted (or on SIGINT/SIGTERM) the router
// drives the finalize-merge handshake: every node seals its local epoch
// and returns its sealed transcript, the router merges them in shard
// order — reproducing byte-for-byte the MergedTranscriptDigest a
// single-process `vdpserver -shards K` would seal on the same seed and
// submissions — and replicates the merged seal to every node before
// printing the verified release. The router keeps no durable state:
// everything needed to resume or audit lives on the nodes, so a router
// killed mid-epoch is replaced by just starting a new one against the same
// backends.
//
// Failure policy: a node that stops answering costs its shard's clients an
// "unavailable" verdict (their connections stay up and other shards keep
// admitting); a background probe pulls the node back into rotation when it
// returns, and a node restarted from its -store-dir recovers its shard
// independently via the recorded board log. A -backends entry may also name
// a replica pair "primary~standby" (the primary runs with -standby, the
// standby with -replica-of): the primary mirrors every log record to the
// standby before acking, and when the primary dies the router promotes the
// standby through a fenced handshake — the shard keeps admitting with no
// operator action, and the stale primary can never acknowledge again.
//
// With -audit the router instead plays the cross-node auditor: it fetches
// the merged seal from every node (all must agree), pulls each node's
// board log (or sealed transcript, for memory-only nodes), re-verifies
// every shard and the shard map, and checks the recomputed merged digest
// against the recorded seal.
//
// Example (four shells):
//
//	vdpserver -addr 127.0.0.1:7101 -shard-index 0 -shard-count 3 -store-dir /var/lib/vdp/n0 -bins 2 -coins 32
//	vdpserver -addr 127.0.0.1:7102 -shard-index 1 -shard-count 3 -store-dir /var/lib/vdp/n1 -bins 2 -coins 32
//	vdpserver -addr 127.0.0.1:7103 -shard-index 2 -shard-count 3 -store-dir /var/lib/vdp/n2 -bins 2 -coins 32
//	vdprouter -addr 127.0.0.1:7001 -backends 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 -clients 64 -bins 2 -coins 32
//	vdprouter -backends 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 -bins 2 -coins 32 -audit
//
// Replicated (shard 0 gets a standby on :7111):
//
//	vdpserver -addr 127.0.0.1:7111 -shard-index 0 -shard-count 3 -replica-of 127.0.0.1:7101 -store-dir /var/lib/vdp/s0 -bins 2 -coins 32
//	vdpserver -addr 127.0.0.1:7101 -shard-index 0 -shard-count 3 -standby 127.0.0.1:7111 -store-dir /var/lib/vdp/n0 -bins 2 -coins 32
//	vdprouter -addr 127.0.0.1:7001 -backends 127.0.0.1:7101~127.0.0.1:7111,127.0.0.1:7102,127.0.0.1:7103 -clients 64 -bins 2 -coins 32
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/group"
	"repro/internal/transport"
	"repro/internal/vdp"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7001", "client-facing listen address")
		backends = flag.String("backends", "", "comma-separated shard replica sets in shard order: each entry is a node address or a primary~standby pair")
		clients  = flag.Int("clients", 3, "accepted submissions across all shards before finalizing")
		bins     = flag.Int("bins", 1, "histogram bins (must match the nodes)")
		coins    = flag.Int("coins", 64, "noise coins nb (must match the nodes)")
		eps      = flag.Float64("eps", 1.0, "epsilon (used when -coins 0)")
		delta    = flag.Float64("delta", 1e-6, "delta (used when -coins 0)")
		grp      = flag.String("group", "p256", "commitment group (must match the nodes)")
		grace    = flag.Duration("grace", 30*time.Second, "shutdown grace period for draining and finalizing")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-leg backend round-trip deadline")
		retries  = flag.Int("retries", 5, "redial/retry attempts for backend dials and idempotent RPCs")
		backoff  = flag.Duration("backoff", 100*time.Millisecond, "initial reconnect backoff (doubles, capped at 2s)")
		probe    = flag.Duration("probe", 2*time.Second, "health-probe interval for unhealthy backends")
		audit    = flag.Bool("audit", false, "run the cross-node audit instead of serving")
		epoch    = flag.Int("epoch", -1, "epoch to audit with -audit (-1 = latest merged)")
	)
	flag.Parse()

	addrs := splitBackends(*backends)
	if len(addrs) == 0 {
		log.Fatal("-backends is required: comma-separated node addresses in shard order")
	}

	g, err := group.ByName(*grp)
	if err != nil {
		log.Fatal(err)
	}
	pub, err := vdp.Setup(vdp.Config{Group: g, Provers: 1, Bins: *bins, Coins: *coins, Epsilon: *eps, Delta: *delta})
	if err != nil {
		log.Fatal(err)
	}

	router, err := cluster.New(cluster.Config{
		Pub:      pub,
		Backends: addrs,
		Timeout:  *timeout,
		Retry:    transport.RetryPolicy{Retries: *retries, Backoff: *backoff, MaxBackoff: 2 * time.Second},
		Target:   *clients,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *audit {
		report, err := router.AuditCluster(ctx, *epoch, 0)
		if err != nil {
			log.Fatalf("cross-node audit FAILED: %v", err)
		}
		fmt.Printf("cross-node audit: PASSED (epoch %d, %d shards, %s-grade evidence, digest %x...)\n",
			report.Epoch, report.Shards, report.Source, report.Digest[:8])
		return
	}

	sts, err := router.CheckTopology()
	if err != nil {
		log.Fatalf("cluster topology check failed: %v", err)
	}
	recovered := 0
	for _, st := range sts {
		recovered += st.Accepted
	}
	// Nodes recovered from their board logs already hold accepted
	// submissions; count them toward the target so a router replacing a
	// crashed one does not wait for clients that already landed.
	router.SeedAccepted(recovered)
	router.StartProbes(ctx, *probe)

	srv, err := transport.Listen(*addr, router.Handler())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("verifiable-dp router listening on %s (%d shards, epoch %d, %d/%d accepted, M=%d, nb=%d, group=%s)",
		srv.Addr(), router.Shards(), sts[0].Epoch, recovered, *clients, pub.Bins(), pub.Coins(), *grp)

	select {
	case <-router.Done():
	case <-ctx.Done():
		log.Printf("signal received: shutting down gracefully")
	}

	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *grace)
	defer cancelDrain()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("listener drain: %v", err)
	}

	if router.Accepted() == 0 {
		log.Printf("no accepted submissions; leaving the epoch open on the nodes")
		return
	}
	if router.Accepted() < *clients {
		log.Printf("finalizing early with %d/%d clients", router.Accepted(), *clients)
	}

	finalizeCtx, cancelFinalize := context.WithTimeout(context.Background(), *grace)
	defer cancelFinalize()
	res, err := router.FinalizeMerge(finalizeCtx)
	if err != nil {
		log.Fatalf("cluster finalize failed: %v", err)
	}
	printRelease(res.Release)
	for i, t := range res.Transcripts {
		fmt.Printf("  shard %d: %d clients on its board\n", i, len(t.Clients))
	}
	if err := vdp.AuditMerged(finalizeCtx, pub, res.Transcripts, res.Release, 0); err != nil {
		log.Fatalf("merged self-audit failed: %v", err)
	}
	fmt.Printf("merged transcript audit: PASSED (epoch %d, digest %x...)\n", res.Epoch, res.Digest[:8])
	fmt.Printf("merged seal replicated to %d nodes; audit cross-node with: vdprouter -backends %s -audit\n",
		router.Shards(), *backends)
}

func printRelease(rel *vdp.Release) {
	fmt.Println("verified release:")
	for j, raw := range rel.Raw {
		fmt.Printf("  bin %d: raw=%d estimate=%.1f (±%.1f)\n", j, raw, rel.Estimate[j], rel.Stddev)
	}
}

func splitBackends(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
