package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/sketch"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/vdp"
)

// Heavy-hitters serving mode (-sketch RxWxD): the board is a SketchSession —
// one ΠBin sub-session per count-min row — and each client's contribution is
// W committed one-hot vectors riding a single "submit-batch" frame (rows in
// row order, all under the client's ID; vdpclient -sketch -item sends
// exactly this). Once -clients contributions are admitted (or on signal) the
// session finalizes into a verifiable noisy sketch, the top of the ranking
// is printed, and — unlike the histogram modes — the listener stays up:
// "sketch-query" frames (vdpclient -query) are answered from the released
// sketch for the -serve-queries window, so the release is not just a line in
// a log but a queryable artifact whose every cell is pinned by the merged
// transcript digest.

// parseLedgerFlag turns the -ledger flag into a budget policy (nil when the
// flag is empty: no ledger).
func parseLedgerFlag(s string) (*vdp.BudgetConfig, error) {
	if s == "" {
		return nil, nil
	}
	return vdp.ParseBudget(s)
}

// ledgerDesc renders the policy for the startup banner.
func ledgerDesc(b *vdp.BudgetConfig) string {
	if b == nil {
		return "off"
	}
	return fmt.Sprintf("%gε/epoch of %gε", float64(b.EpochCost)/1e6, float64(b.Total)/1e6)
}

// runSketch serves one heavy-hitters epoch end to end: admission, finalize,
// and the post-release query window.
func runSketch(ctx context.Context, pub *vdp.Public, layout sketch.Layout, budget *vdp.BudgetConfig,
	addr, storeDir string, clients int, grace, serveFor time.Duration) {
	hs, closeStore, err := openSketchSession(ctx, pub, layout, budget, storeDir)
	if err != nil {
		log.Fatal(err)
	}
	if closeStore != nil {
		defer closeStore()
	}

	var (
		mu       sync.Mutex
		accepted = hs.Row(0).Accepted() // non-zero after recovery
		released *vdp.NoisySketch
		done     = make(chan struct{})
		doneOnce sync.Once
	)
	if accepted >= clients {
		doneOnce.Do(func() { close(done) })
	}
	handler := func(f *transport.Frame) ([]*transport.Frame, error) {
		switch f.Kind {
		case "submit-batch":
			subs, err := pub.DecodeSubmissionBatch(f.Payload)
			if err != nil {
				return nil, err
			}
			contribs, err := groupContributions(layout, subs)
			if err != nil {
				return nil, err
			}
			verdicts, err := hs.SubmitBatch(ctx, contribs)
			if err != nil {
				return nil, err
			}
			// One verdict per contribution, not per row: the client's unit of
			// admission is the whole W-row bundle, and so is its refusal (a
			// budget refusal here is the board-recorded, attributable kind).
			vs := make([]vdp.BatchVerdict, len(contribs))
			ok := 0
			for i, c := range contribs {
				vs[i].ID = c.ClientID
				if verdicts[i] != nil {
					vs[i].Reason = verdicts[i].Error()
				} else {
					vs[i].Accepted = true
					ok++
				}
			}
			mu.Lock()
			accepted += ok
			n := accepted
			mu.Unlock()
			log.Printf("accepted sketch batch of %d contribution(s): %d admitted, %d refused (%d/%d)",
				len(contribs), ok, len(contribs)-ok, n, clients)
			if n >= clients {
				doneOnce.Do(func() { close(done) })
			}
			return []*transport.Frame{{Kind: "batch-verdicts", Payload: vdp.EncodeBatchVerdicts(vs)}}, nil
		case "sketch-query":
			q, err := vdp.DecodeSketchQuery(f.Payload)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			ns := released
			mu.Unlock()
			if ns == nil {
				return nil, fmt.Errorf("epoch %d is still collecting; queries are served after the release", hs.Epoch())
			}
			var items []vdp.ItemEstimate
			switch q.Kind {
			case vdp.SketchQueryPoint:
				est, bound, err := ns.PointQuery(q.Arg)
				if err != nil {
					return nil, err
				}
				items = []vdp.ItemEstimate{{Item: q.Arg, Estimate: est, Bound: bound}}
			default:
				items = ns.HeavyHitters(q.Arg)
			}
			return []*transport.Frame{{Kind: "sketch-estimates", Payload: vdp.EncodeItemEstimates(items)}}, nil
		default:
			return nil, fmt.Errorf("unexpected frame kind %q in sketch mode (a single \"submit\" frame cannot carry a %d-row contribution; use vdpclient -sketch -item)",
				f.Kind, layout.Rows)
		}
	}

	srv, err := transport.Listen(addr, handler)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("verifiable heavy-hitters curator listening on %s (%dx%d sketch, domain %d, nb=%d, ledger=%s, store=%s)",
		srv.Addr(), layout.Rows, layout.Width, layout.Domain, pub.Coins(), ledgerDesc(budget), storeDesc(storeDir))

	select {
	case <-done:
	case <-ctx.Done():
		log.Printf("signal received: finalizing the sketch epoch")
	}

	mu.Lock()
	n := accepted
	mu.Unlock()
	if n == 0 {
		srv.Shutdown(context.Background())
		log.Printf("no accepted contributions; aborting the epoch without a release")
		return
	}
	if n < clients {
		log.Printf("finalizing early with %d/%d contributions", n, clients)
	}

	// The listener stays up across Finalize so queries can land the moment
	// the release exists; a contribution racing the close gets an error
	// frame from the now-finalizing session, which is the honest answer.
	finalizeCtx, cancelFinalize := context.WithTimeout(context.Background(), grace)
	defer cancelFinalize()
	res, err := hs.Finalize(finalizeCtx)
	if err != nil {
		log.Fatalf("sketch finalize failed: %v", err)
	}
	mu.Lock()
	released = res.Sketch
	mu.Unlock()

	fmt.Printf("verifiable noisy sketch released: %dx%d over domain %d, %d contribution(s), error bound ±%.1f\n",
		layout.Rows, layout.Width, layout.Domain, res.Sketch.Count, res.Sketch.ErrorBound())
	top := res.Sketch.HeavyHitters(10)
	for rank, it := range top {
		fmt.Printf("  #%-2d item %d: estimate %.1f (±%.1f)\n", rank+1, it.Item, it.Estimate, it.Bound)
	}
	fmt.Printf("merged transcript digest %x...\n", res.Digest[:8])
	if len(res.RejectedClients) > 0 {
		fmt.Printf("rejected clients: %d (each with a board-recorded verdict)\n", len(res.RejectedClients))
	}
	if storeDir != "" {
		fmt.Printf("epoch %d sealed across %d row segments in %s; audit offline with: vdpclient -sketch %dx%dx%d -audit-store %s\n",
			hs.Epoch(), layout.Rows, storeDir, layout.Rows, layout.Width, layout.Domain, storeDir)
	}

	if serveFor > 0 {
		log.Printf("serving queries for %v (vdpclient -query top:K | point:ITEM)", serveFor)
		select {
		case <-time.After(serveFor):
		case <-ctx.Done():
		}
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), grace)
	defer cancelDrain()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("listener drain: %v", err)
	}
}

// openSketchSession opens the sketch store under storeDir — a segmented log
// whose segments are count-min rows — and either starts a fresh durable
// SketchSession or recovers the interrupted one, mirroring openSession's
// Compact-else-Reset turnover for a sealed epoch. An empty storeDir keeps
// the board in memory.
func openSketchSession(ctx context.Context, pub *vdp.Public, layout sketch.Layout, budget *vdp.BudgetConfig, storeDir string) (*vdp.SketchSession, func() error, error) {
	opts := vdp.SessionOptions{Budget: budget}
	if storeDir == "" {
		hs, err := vdp.NewSketchSession(pub, layout, opts)
		return hs, nil, err
	}
	if _, err := os.Stat(filepath.Join(storeDir, boardLogName)); err == nil {
		return nil, nil, fmt.Errorf("%s holds an unsharded board log; point -sketch at a fresh directory", storeDir)
	}
	if err := os.MkdirAll(storeDir, 0o755); err != nil {
		return nil, nil, err
	}
	seg, err := store.OpenSegmentedLog(storeDir, layout.Rows)
	if err != nil {
		return nil, nil, err
	}
	opts.Segmented = seg
	if seg.Empty() {
		hs, err := vdp.NewSketchSession(pub, layout, opts)
		if err != nil {
			seg.Close()
			return nil, nil, err
		}
		return hs, seg.Close, nil
	}
	hs, err := vdp.ResumeSketchSession(ctx, pub, layout, opts)
	if err != nil {
		seg.Close()
		return nil, nil, fmt.Errorf("recovering sketch store: %w", err)
	}
	if hs.Finalized() {
		if err := hs.Compact(); err != nil {
			if err = hs.Reset(); err != nil {
				seg.Close()
				return nil, nil, err
			}
		}
		log.Printf("recovered sketch store: last epoch sealed, compacted, opening epoch %d", hs.Epoch())
	} else {
		log.Printf("recovered sketch store: resuming epoch %d with %d contribution(s)", hs.Epoch(), hs.Row(0).Accepted())
	}
	return hs, seg.Close, nil
}

// groupContributions reassembles a decoded submit-batch frame into whole
// sketch contributions: Rows consecutive submissions per client, in row
// order — the exact shape vdpclient -sketch sends (EncodeSubmissionBatch
// over each contribution's row bundle).
func groupContributions(layout sketch.Layout, subs []*vdp.ClientSubmission) ([]*vdp.SketchContribution, error) {
	if len(subs) == 0 || len(subs)%layout.Rows != 0 {
		return nil, fmt.Errorf("sketch batch carries %d submissions, want a positive multiple of %d (one per row)",
			len(subs), layout.Rows)
	}
	out := make([]*vdp.SketchContribution, 0, len(subs)/layout.Rows)
	for at := 0; at < len(subs); at += layout.Rows {
		rows := subs[at : at+layout.Rows]
		for _, s := range rows {
			if s == nil || s.Public == nil {
				return nil, fmt.Errorf("sketch batch has an incomplete submission")
			}
		}
		id := rows[0].Public.ID
		for _, s := range rows[1:] {
			if s.Public.ID != id {
				return nil, fmt.Errorf("sketch batch interleaves clients %d and %d inside one contribution", id, s.Public.ID)
			}
		}
		out = append(out, &vdp.SketchContribution{ClientID: id, Rows: rows})
	}
	return out, nil
}
