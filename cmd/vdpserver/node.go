package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/vdp"
)

// mergedLogName is the merged-seal sidecar a cluster node keeps next to its
// board log: the router replicates each epoch's merged seal here, so any
// single surviving node can attest the cluster-level seal.
const mergedLogName = "merged.log"

// runNode serves one shard of a multi-node cluster: a single-shard session
// seeded with shard shardIndex's substream of the cluster's deterministic
// seed derivation (so K nodes merge to the same digest as one ShardedSession
// with Shards=K), plus the cluster RPC for the router's finalize-merge
// handshake. Unlike standalone mode the node never finalizes on its own —
// sealing, merging and epoch turnover are driven by the router — so reaching
// any particular accepted count does not stop the server, and shutdown
// leaves an open epoch on disk exactly where ResumeShardSession can pick it
// up.
func runNode(ctx context.Context, pub *vdp.Public, addr, storeDir string, budget *vdp.BudgetConfig, shardIndex, shardCount int, grace time.Duration) {
	var (
		boardLog *store.FileLog
		sealLog  *store.FileLog
		sess     *vdp.Session
		err      error
	)
	if storeDir == "" {
		sess, err = vdp.NewShardSession(pub, vdp.SessionOptions{Budget: budget}, shardIndex, shardCount)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		if err := os.MkdirAll(storeDir, 0o755); err != nil {
			log.Fatal(err)
		}
		boardLog, err = store.OpenFileLog(filepath.Join(storeDir, boardLogName))
		if err != nil {
			log.Fatal(err)
		}
		defer boardLog.Close()
		if tb := boardLog.Truncated(); tb > 0 {
			log.Printf("board log: discarded %d torn-tail bytes from an interrupted append", tb)
		}
		sealLog, err = store.OpenFileLog(filepath.Join(storeDir, mergedLogName))
		if err != nil {
			log.Fatal(err)
		}
		defer sealLog.Close()
		opts := vdp.SessionOptions{Store: boardLog, Budget: budget}
		if boardLog.Len() == 0 {
			sess, err = vdp.NewShardSession(pub, opts, shardIndex, shardCount)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			sess, err = vdp.ResumeShardSession(ctx, pub, opts, shardIndex, shardCount)
			if err != nil {
				log.Fatalf("recovering board log: %v", err)
			}
			// Standalone recovery Resets a sealed epoch to open the next one;
			// a cluster node must not — the merged seal may still be in
			// flight, and the router's roll-forward (or an explicit
			// node-reset) is the only sanctioned turnover.
			if sess.Finalized() {
				log.Printf("recovered board log: epoch %d sealed locally; awaiting the router's merge/reset", sess.Epoch())
			} else {
				log.Printf("recovered board log: resuming epoch %d with %d submissions (%d rejected)",
					sess.Epoch(), sess.Submitted(), len(sess.Rejected()))
			}
		}
	}

	var blog, slog store.BoardLog
	if boardLog != nil {
		blog = boardLog
	}
	if sealLog != nil {
		slog = sealLog
	}
	node, err := cluster.NewNode(ctx, pub, sess, cluster.NodeConfig{
		Shard: shardIndex, Shards: shardCount, BoardLog: blog, SealLog: slog,
	})
	if err != nil {
		log.Fatal(err)
	}

	var (
		mu       sync.Mutex
		accepted = node.Accepted()
	)
	handler := func(f *transport.Frame) ([]*transport.Frame, error) {
		if cluster.IsRPC(f.Kind) {
			return node.Handle(f), nil
		}
		switch f.Kind {
		case "submit":
			sub, err := pub.DecodeSubmitPayload(f.Payload)
			if err != nil {
				return nil, err
			}
			if err := node.Submit(ctx, sub); err != nil {
				return nil, err
			}
			mu.Lock()
			accepted++
			n := accepted
			mu.Unlock()
			log.Printf("shard %d: accepted client %d (%d so far)", shardIndex, sub.Public.ID, n)
			return []*transport.Frame{{Kind: "ack", Payload: []byte("accepted")}}, nil
		case "submit-batch":
			subs, err := pub.DecodeSubmissionBatch(f.Payload)
			if err != nil {
				return nil, err
			}
			verdicts, err := node.SubmitBatch(ctx, subs)
			if err != nil {
				return nil, err
			}
			ok := 0
			for _, v := range verdicts {
				if v == nil {
					ok++
				}
			}
			mu.Lock()
			accepted += ok
			n := accepted
			mu.Unlock()
			log.Printf("shard %d: accepted batch of %d: %d admitted, %d rejected (%d so far)",
				shardIndex, len(subs), ok, len(subs)-ok, n)
			reply := vdp.EncodeBatchVerdicts(vdp.VerdictsFor(subs, verdicts))
			return []*transport.Frame{{Kind: "batch-verdicts", Payload: reply}}, nil
		default:
			return nil, fmt.Errorf("unexpected frame kind %q", f.Kind)
		}
	}

	srv, err := transport.Listen(addr, handler)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("verifiable-dp cluster node listening on %s (shard %d of %d, M=%d, nb=%d, store=%s)",
		srv.Addr(), shardIndex, shardCount, pub.Bins(), pub.Coins(), storeDesc(storeDir))

	<-ctx.Done()
	log.Printf("signal received: shutting down shard %d", shardIndex)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), grace)
	defer cancelDrain()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("listener drain: %v", err)
	}
	if sess.Finalized() {
		log.Printf("shard %d exiting with epoch %d sealed", shardIndex, sess.Epoch())
	} else if storeDir != "" {
		log.Printf("shard %d exiting mid-epoch; epoch %d is resumable from %s", shardIndex, sess.Epoch(), storeDir)
	} else {
		log.Printf("shard %d exiting mid-epoch; in-memory board discarded", shardIndex)
	}
}
