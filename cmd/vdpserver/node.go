package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/vdp"
)

// mergedLogName is the merged-seal sidecar a cluster node keeps next to its
// board log: the router replicates each epoch's merged seal here, so any
// single surviving node can attest the cluster-level seal.
const mergedLogName = "merged.log"

// mirrorOptions are the primary→standby replication client settings: short
// legs with a couple of retries, so a bounced standby costs a redial, not a
// wedged admission path.
func mirrorOptions(grace time.Duration) transport.ClientOptions {
	return transport.ClientOptions{
		Timeout: 10 * time.Second,
		Retry:   transport.RetryPolicy{Retries: 3, Backoff: 50 * time.Millisecond, MaxBackoff: grace},
	}
}

// openNodeLogs opens (or creates) a cluster replica's two durable logs —
// board and merged-seal sidecar — under storeDir, falling back to in-memory
// logs when storeDir is empty. The layout is identical for primaries and
// standbys, so a promoted standby's directory is a valid node directory.
func openNodeLogs(storeDir string) (board, seal store.BoardLog, durable bool, closeAll func()) {
	if storeDir == "" {
		return store.NewMemLog(), store.NewMemLog(), false, func() {}
	}
	if err := os.MkdirAll(storeDir, 0o755); err != nil {
		log.Fatal(err)
	}
	boardLog, err := store.OpenFileLog(filepath.Join(storeDir, boardLogName))
	if err != nil {
		log.Fatal(err)
	}
	if tb := boardLog.Truncated(); tb > 0 {
		log.Printf("board log: discarded %d torn-tail bytes from an interrupted append", tb)
	}
	sealLog, err := store.OpenFileLog(filepath.Join(storeDir, mergedLogName))
	if err != nil {
		boardLog.Close()
		log.Fatal(err)
	}
	return boardLog, sealLog, true, func() {
		boardLog.Close()
		sealLog.Close()
	}
}

// runNode serves one shard of a multi-node cluster: a single-shard session
// seeded with shard shardIndex's substream of the cluster's deterministic
// seed derivation (so K nodes merge to the same digest as one ShardedSession
// with Shards=K), plus the cluster RPC for the router's finalize-merge
// handshake. Unlike standalone mode the node never finalizes on its own —
// sealing, merging and epoch turnover are driven by the router — so reaching
// any particular accepted count does not stop the server, and shutdown
// leaves an open epoch on disk exactly where ResumeShardSession can pick it
// up.
//
// With standbyAddr set the node is a replica-set primary: both logs are
// wrapped in store.ReplicatedLog, whose mirror hook ships every record to
// the standby before the covering verdict is acknowledged. A submission that
// cannot be mirrored is not acknowledged — synchronous replication is the
// point — so with the standby down, admissions fail until it returns or the
// router promotes it.
func runNode(ctx context.Context, pub *vdp.Public, addr, storeDir string, budget *vdp.BudgetConfig, shardIndex, shardCount int, standbyAddr string, grace time.Duration) {
	boardInner, sealInner, durable, closeLogs := openNodeLogs(storeDir)
	defer closeLogs()

	blog, slog := boardInner, sealInner
	var repl *cluster.Replicator
	if standbyAddr != "" {
		repl = cluster.NewReplicator(standbyAddr, shardIndex, shardCount, mirrorOptions(grace))
		defer repl.Close()
		var err error
		blog, err = store.NewReplicatedLog(boardInner, repl.Mirror(cluster.ReplLogBoard))
		if err != nil {
			log.Fatal(err)
		}
		slog, err = store.NewReplicatedLog(sealInner, repl.Mirror(cluster.ReplLogSeal))
		if err != nil {
			log.Fatal(err)
		}
		// Best-effort catch-up of pre-existing records; a standby that is not
		// up yet just means the first acknowledged admission pays for it.
		for _, l := range []store.BoardLog{blog, slog} {
			if f, ok := l.(interface{ Flush() error }); ok {
				if err := f.Flush(); err != nil {
					log.Printf("standby %s not caught up yet: %v", standbyAddr, err)
					break
				}
			}
		}
	}

	var (
		sess *vdp.Session
		err  error
	)
	opts := vdp.SessionOptions{Store: blog, Budget: budget}
	if !durable && repl == nil {
		opts.Store = nil // plain in-memory board, no log to keep
	}
	empty := true
	if c, ok := blog.(interface{ Len() int }); ok {
		empty = c.Len() == 0
	}
	if opts.Store == nil || empty {
		sess, err = vdp.NewShardSession(pub, opts, shardIndex, shardCount)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		sess, err = vdp.ResumeShardSession(ctx, pub, opts, shardIndex, shardCount)
		if err != nil {
			log.Fatalf("recovering board log: %v", err)
		}
		// Standalone recovery Resets a sealed epoch to open the next one;
		// a cluster node must not — the merged seal may still be in
		// flight, and the router's roll-forward (or an explicit
		// node-reset) is the only sanctioned turnover.
		if sess.Finalized() {
			log.Printf("recovered board log: epoch %d sealed locally; awaiting the router's merge/reset", sess.Epoch())
		} else {
			log.Printf("recovered board log: resuming epoch %d with %d submissions (%d rejected)",
				sess.Epoch(), sess.Submitted(), len(sess.Rejected()))
		}
	}

	var nodeBoard, nodeSeal store.BoardLog
	if durable || repl != nil {
		nodeBoard, nodeSeal = blog, slog
	}
	node, err := cluster.NewNode(ctx, pub, sess, cluster.NodeConfig{
		Shard: shardIndex, Shards: shardCount, BoardLog: nodeBoard, SealLog: nodeSeal,
	})
	if err != nil {
		log.Fatal(err)
	}

	var (
		mu       sync.Mutex
		accepted = node.Accepted()
	)
	handler := func(f *transport.Frame) ([]*transport.Frame, error) {
		if cluster.IsRPC(f.Kind) {
			return node.Handle(f), nil
		}
		switch f.Kind {
		case "submit":
			sub, err := pub.DecodeSubmitPayload(f.Payload)
			if err != nil {
				return nil, err
			}
			if err := node.Submit(ctx, sub); err != nil {
				return nil, err
			}
			mu.Lock()
			accepted++
			n := accepted
			mu.Unlock()
			log.Printf("shard %d: accepted client %d (%d so far)", shardIndex, sub.Public.ID, n)
			return []*transport.Frame{{Kind: "ack", Payload: []byte("accepted")}}, nil
		case "submit-batch":
			subs, err := pub.DecodeSubmissionBatch(f.Payload)
			if err != nil {
				return nil, err
			}
			verdicts, err := node.SubmitBatch(ctx, subs)
			if err != nil {
				return nil, err
			}
			ok := 0
			for _, v := range verdicts {
				if v == nil {
					ok++
				}
			}
			mu.Lock()
			accepted += ok
			n := accepted
			mu.Unlock()
			log.Printf("shard %d: accepted batch of %d: %d admitted, %d rejected (%d so far)",
				shardIndex, len(subs), ok, len(subs)-ok, n)
			reply := vdp.EncodeBatchVerdicts(vdp.VerdictsFor(subs, verdicts))
			return []*transport.Frame{{Kind: "batch-verdicts", Payload: reply}}, nil
		default:
			return nil, fmt.Errorf("unexpected frame kind %q", f.Kind)
		}
	}

	srv, err := transport.Listen(addr, handler)
	if err != nil {
		log.Fatal(err)
	}
	mirror := "none"
	if repl != nil {
		mirror = standbyAddr
	}
	log.Printf("verifiable-dp cluster node listening on %s (shard %d of %d, M=%d, nb=%d, store=%s, standby=%s)",
		srv.Addr(), shardIndex, shardCount, pub.Bins(), pub.Coins(), storeDesc(storeDir), mirror)

	<-ctx.Done()
	log.Printf("signal received: shutting down shard %d", shardIndex)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), grace)
	defer cancelDrain()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("listener drain: %v", err)
	}
	if sess.Finalized() {
		log.Printf("shard %d exiting with epoch %d sealed", shardIndex, sess.Epoch())
	} else if storeDir != "" {
		log.Printf("shard %d exiting mid-epoch; epoch %d is resumable from %s", shardIndex, sess.Epoch(), storeDir)
	} else {
		log.Printf("shard %d exiting mid-epoch; in-memory board discarded", shardIndex)
	}
}

// runStandby serves one shard's warm replica: it applies the primary's
// replicate-append stream to its own logs (same on-disk layout as a node, so
// the directory stays audit-able and restart-able) and serves the read-side
// RPCs so followers can keep tailing through a failover. It takes no
// admissions until the router promotes it — at which point it fences the old
// primary, resumes the shard session from the mirror, and serves the full
// node protocol, submissions included. primaryAddr is not dialed; the
// primary connects to us, the flag documents the pairing in logs and ps
// output.
func runStandby(ctx context.Context, pub *vdp.Public, addr, storeDir string, budget *vdp.BudgetConfig, shardIndex, shardCount int, primaryAddr string, grace time.Duration) {
	board, seal, _, closeLogs := openNodeLogs(storeDir)
	defer closeLogs()

	sb, err := cluster.NewStandby(ctx, pub, cluster.StandbyConfig{
		Shard: shardIndex, Shards: shardCount, Board: board, Seal: seal,
		SessionOpts: vdp.SessionOptions{Budget: budget},
	})
	if err != nil {
		log.Fatal(err)
	}

	var (
		mu       sync.Mutex
		accepted int
	)
	handler := func(f *transport.Frame) ([]*transport.Frame, error) {
		if cluster.IsRPC(f.Kind) {
			wasPromoted := sb.Promoted()
			reply := sb.Handle(f)
			if !wasPromoted && sb.Promoted() {
				log.Printf("shard %d standby PROMOTED: now serving as the shard's node (%d mirrored records)",
					shardIndex, sb.MirroredRecords())
			}
			return reply, nil
		}
		node := sb.Node()
		if node == nil {
			return nil, fmt.Errorf("shard %d standby does not take submissions until promoted", shardIndex)
		}
		switch f.Kind {
		case "submit":
			sub, err := pub.DecodeSubmitPayload(f.Payload)
			if err != nil {
				return nil, err
			}
			if err := node.Submit(ctx, sub); err != nil {
				return nil, err
			}
			mu.Lock()
			accepted++
			n := accepted
			mu.Unlock()
			log.Printf("shard %d (promoted standby): accepted client %d (%d since promotion)", shardIndex, sub.Public.ID, n)
			return []*transport.Frame{{Kind: "ack", Payload: []byte("accepted")}}, nil
		case "submit-batch":
			subs, err := pub.DecodeSubmissionBatch(f.Payload)
			if err != nil {
				return nil, err
			}
			verdicts, err := node.SubmitBatch(ctx, subs)
			if err != nil {
				return nil, err
			}
			ok := 0
			for _, v := range verdicts {
				if v == nil {
					ok++
				}
			}
			mu.Lock()
			accepted += ok
			n := accepted
			mu.Unlock()
			log.Printf("shard %d (promoted standby): accepted batch of %d: %d admitted, %d rejected (%d since promotion)",
				shardIndex, len(subs), ok, len(subs)-ok, n)
			reply := vdp.EncodeBatchVerdicts(vdp.VerdictsFor(subs, verdicts))
			return []*transport.Frame{{Kind: "batch-verdicts", Payload: reply}}, nil
		default:
			return nil, fmt.Errorf("unexpected frame kind %q", f.Kind)
		}
	}

	srv, err := transport.Listen(addr, handler)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("verifiable-dp standby listening on %s (shard %d of %d, mirror of %s, store=%s)",
		srv.Addr(), shardIndex, shardCount, primaryAddr, storeDesc(storeDir))

	<-ctx.Done()
	log.Printf("signal received: shutting down shard %d standby", shardIndex)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), grace)
	defer cancelDrain()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("listener drain: %v", err)
	}
	if sb.Promoted() {
		log.Printf("shard %d exiting as the promoted node; store %s is resumable as a node directory", shardIndex, storeDesc(storeDir))
	} else {
		log.Printf("shard %d standby exiting with %d mirrored records", shardIndex, sb.MirroredRecords())
	}
}
