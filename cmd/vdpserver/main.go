// Command vdpserver runs a verifiable-DP aggregation service in the
// trusted-curator model, built on the streaming Session API: client
// submissions arriving over TCP are decoded and verified *as they land on
// the socket* — each client gets its accept/reject verdict in the reply to
// its own frame — and once the expected number have been accepted (or the
// process receives SIGINT/SIGTERM) the open session is finalized: noise
// generation, Σ-OR proving, Morra and the audit transcript all run over the
// already-verified client set, and the verified release is printed.
//
// Batched admission: a "submit-batch" frame carries up to
// vdp.MaxBatchClients full submissions in one message (vdpclient -batch N
// sends them). The whole batch is admitted under a single roster-lock pass,
// persisted inside one group-commit fsync window, and verified by one
// folded Σ-OR batch check running concurrently with the fsync; the reply is
// one "batch-verdicts" frame with a per-client verdict each, so one bad
// client in a batch is rejected individually while its neighbours land.
//
// Sharding: with -shards N the bulletin board is split across N independent
// sub-sessions, consistent-hashed by client ID (vdp.ShardOf), so concurrent
// submissions routed to different shards never contend on a shared roster
// lock or board log. Finalize closes every shard in parallel and merges the
// per-shard transcripts into one combined release pinned by the merged
// transcript digest.
//
// Durability: with -store-dir set, the bulletin board is an append-only,
// checksummed log on disk (internal/store) — one file for an unsharded
// server, a manifest plus one segment per shard for a sharded one. Every
// accepted submission and verdict is fsync'd before the client hears back,
// and Finalize seals the epoch's transcript(s) into the same store. A
// vdpserver killed mid-epoch and restarted with the same -store-dir
// recovers the session from the log — same roster, same board order — and
// finishes the epoch as if it had never died. A segmented layout is
// detected by its manifest and adopted with its recorded shard count, so
// -shards need not be repeated on restart (a mismatching explicit count is
// refused — the shard map is fixed at creation); the sealed transcript can
// then be audited offline with `vdpclient -audit-store <dir>`, which
// detects the layout the same way. Without -store-dir the board lives in
// memory and a crash discards the epoch.
//
// Privacy-budget ledger: with -ledger "epochEps,totalEps" every first
// admission of a client in an epoch debits its lifetime ε budget as a
// digest-chained RecordBudgetCharge on the board, and a client whose next
// charge would breach the cap is refused with an attributable, board-recorded
// verdict. The ledger composes with every mode (plain, -shards, cluster
// node, -sketch) and is replayed — and re-verified — on recovery and by every
// auditor.
//
// Heavy-hitters mode: with -sketch RxWxD the board is a SketchSession — R
// ΠBin sub-sessions of W bins each — fed by W-row committed one-hot
// contributions (vdpclient -sketch -item), and Finalize releases a
// verifiable noisy count-min sketch instead of a histogram. The release is
// served: for -serve-queries the listener keeps answering vdpclient -query
// frames (top:K / point:ITEM) with estimates carrying the sketch's error
// bound.
//
// Graceful shutdown: on SIGINT/SIGTERM the listener closes, in-flight
// submissions drain, the session is finalized with whatever clients were
// accepted so far (or abandoned cleanly when none were), and the board log
// is flushed and closed.
//
// The deployment configuration flags must match the ones clients use, since
// the Σ-proof session context binds submissions to the exact deployment.
//
// Example (two shells):
//
//	vdpserver -addr 127.0.0.1:7001 -clients 3 -bins 2 -coins 32 -shards 4 -store-dir /var/lib/vdp
//	for i in 0 1 2; do vdpclient -addr 127.0.0.1:7001 -id $i -choice 1 -bins 2 -coins 32; done
//	vdpclient -audit-store /var/lib/vdp -bins 2 -coins 32   # offline audit
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/group"
	"repro/internal/sketch"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/vdp"
)

// boardLogName is the log file created under -store-dir for an unsharded
// server; a sharded server lays out a manifest plus per-shard segments in
// the same directory instead.
const boardLogName = "board.log"

// aggregator is the part of the session surface the serving loop needs; both
// vdp.Session and vdp.ShardedSession implement it. Finalization stays
// type-specific because the sharded result carries per-shard transcripts.
type aggregator interface {
	Submit(ctx context.Context, sub *vdp.ClientSubmission) error
	SubmitBatch(ctx context.Context, subs []*vdp.ClientSubmission) ([]error, error)
	Accepted() int
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7001", "listen address")
		clients  = flag.Int("clients", 3, "number of accepted client submissions to wait for")
		bins     = flag.Int("bins", 1, "histogram bins (1 = counting query)")
		coins    = flag.Int("coins", 64, "noise coins nb (0 = calibrate from -eps/-delta)")
		eps      = flag.Float64("eps", 1.0, "epsilon (used when -coins 0)")
		delta    = flag.Float64("delta", 1e-6, "delta (used when -coins 0)")
		grp      = flag.String("group", "p256", "commitment group: p256|schnorr2048")
		grace    = flag.Duration("grace", 30*time.Second, "shutdown grace period for draining and finalizing")
		storeDir = flag.String("store-dir", "", "directory for the durable board log (empty = in-memory board)")
		shards   = flag.Int("shards", 1, "independent board shards (client IDs are consistent-hashed across them)")
		shardIdx = flag.Int("shard-index", -1, "cluster node mode: serve this shard of -shard-count behind a vdprouter")
		shardCnt = flag.Int("shard-count", 0, "cluster node mode: total shards in the cluster (requires -shard-index)")
		standby  = flag.String("standby", "", "cluster node mode: mirror every log record to the standby at this address before acking")
		replica  = flag.String("replica-of", "", "cluster standby mode: run as the warm standby of the primary at this address (no admissions until promoted)")
		ledger   = flag.String("ledger", "", "privacy-budget ledger policy \"epochEps,totalEps\" (e.g. 0.5,2; empty = no ledger)")
		sketchSp = flag.String("sketch", "", "heavy-hitters mode: serve a RxWxD count-min sketch (e.g. 4x16x1024; overrides -bins with W)")
		serveQ   = flag.Duration("serve-queries", 0, "sketch mode: keep answering -query frames this long after the release (0 = exit)")
	)
	flag.Parse()
	if *shards < 1 {
		log.Fatalf("-shards must be at least 1, got %d", *shards)
	}
	budget, err := parseLedgerFlag(*ledger)
	if err != nil {
		log.Fatal(err)
	}

	binsEff := *bins
	var layout sketch.Layout
	if *sketchSp != "" {
		if layout, err = sketch.ParseLayout(*sketchSp); err != nil {
			log.Fatal(err)
		}
		// Each sketch row is its own ΠBin instance over the row's buckets, so
		// the deployment's bin count is the layout's width, not -bins.
		if *bins != 1 && *bins != layout.Width {
			log.Printf("-sketch %s sets the bin count to the row width %d; ignoring -bins %d", *sketchSp, layout.Width, *bins)
		}
		binsEff = layout.Width
	}

	pub, err := setupFromFlags(*grp, binsEff, *coins, *eps, *delta)
	if err != nil {
		log.Fatal(err)
	}

	// ctx is cancelled on SIGINT/SIGTERM; every in-flight Submit observes it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *shardCnt > 0 || *shardIdx >= 0 {
		// Cluster node mode: one shard of a router-fronted cluster. The
		// node's board is a single sub-session; in-process sharding does not
		// compose with it.
		if *shardIdx < 0 || *shardIdx >= *shardCnt {
			log.Fatalf("-shard-index %d out of range for -shard-count %d", *shardIdx, *shardCnt)
		}
		if *shards != 1 {
			log.Fatalf("-shards cannot be combined with cluster node mode (-shard-index/-shard-count)")
		}
		if *sketchSp != "" {
			log.Fatalf("-sketch cannot be combined with cluster node mode (-shard-index/-shard-count)")
		}
		if *standby != "" && *replica != "" {
			log.Fatalf("-standby and -replica-of are mutually exclusive: a process is a primary or a standby, not both")
		}
		if *replica != "" {
			runStandby(ctx, pub, *addr, *storeDir, budget, *shardIdx, *shardCnt, *replica, *grace)
			return
		}
		runNode(ctx, pub, *addr, *storeDir, budget, *shardIdx, *shardCnt, *standby, *grace)
		return
	}
	if *standby != "" || *replica != "" {
		log.Fatalf("-standby/-replica-of require cluster node mode (-shard-index/-shard-count)")
	}
	if *sketchSp != "" {
		// Heavy-hitters mode: the board is a SketchSession (one sub-session
		// per count-min row); the segmented store's segments are rows, not
		// client-hash shards, so -shards does not compose with it.
		if *shards != 1 {
			log.Fatalf("-shards cannot be combined with -sketch (the sketch's rows are the segments)")
		}
		runSketch(ctx, pub, layout, budget, *addr, *storeDir, *clients, *grace, *serveQ)
		return
	}

	sess, sharded, closeStore, err := openSession(ctx, pub, *storeDir, budget, *shards)
	if err != nil {
		log.Fatal(err)
	}
	if closeStore != nil {
		defer closeStore()
	}
	var agg aggregator = sess
	if sharded != nil {
		agg = sharded
	}

	var (
		accepted = agg.Accepted() // non-zero after recovery from a board log
		mu       sync.Mutex
		done     = make(chan struct{})
		doneOnce sync.Once
	)
	if accepted >= *clients {
		doneOnce.Do(func() { close(done) })
	}
	handler := func(f *transport.Frame) ([]*transport.Frame, error) {
		switch f.Kind {
		case "submit":
			cp, pl, err := decodeSubmission(pub, f.Payload)
			if err != nil {
				return nil, err
			}
			// Eager verification on the owning shard's worker pool: the verdict
			// goes straight back on this client's connection, and Finalize will
			// not re-check anything. With -store-dir the submission and verdict
			// are durable before the reply is written.
			if err := agg.Submit(ctx, &vdp.ClientSubmission{Public: cp, Payloads: []*vdp.ClientPayload{pl}}); err != nil {
				return nil, err
			}
			mu.Lock()
			accepted++
			n := accepted
			mu.Unlock()
			log.Printf("accepted client %d (%d/%d)", cp.ID, n, *clients)
			if n >= *clients {
				doneOnce.Do(func() { close(done) })
			}
			return []*transport.Frame{{Kind: "ack", Payload: []byte("accepted")}}, nil
		case "submit-batch":
			// The batch front door: the whole frame is admitted under one
			// roster-lock pass, one fsync window and one folded Σ-OR check,
			// and the per-client verdicts come back in a single reply frame.
			// Unlike the one-per-frame path, a rejected client is a verdict
			// here, not a dropped connection — only a batch-level failure
			// (closed session, store failure) errors the frame.
			subs, err := pub.DecodeSubmissionBatch(f.Payload)
			if err != nil {
				return nil, err
			}
			verdicts, err := agg.SubmitBatch(ctx, subs)
			if err != nil {
				return nil, err
			}
			ok := 0
			for _, v := range verdicts {
				if v == nil {
					ok++
				}
			}
			mu.Lock()
			accepted += ok
			n := accepted
			mu.Unlock()
			log.Printf("accepted batch of %d: %d admitted, %d rejected (%d/%d)",
				len(subs), ok, len(subs)-ok, n, *clients)
			if n >= *clients {
				doneOnce.Do(func() { close(done) })
			}
			reply := vdp.EncodeBatchVerdicts(vdp.VerdictsFor(subs, verdicts))
			return []*transport.Frame{{Kind: "batch-verdicts", Payload: reply}}, nil
		default:
			return nil, fmt.Errorf("unexpected frame kind %q", f.Kind)
		}
	}

	srv, err := transport.Listen(*addr, handler)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("verifiable-dp curator listening on %s (K=1, M=%d, nb=%d, group=%s, shards=%d, ledger=%s, store=%s)",
		srv.Addr(), pub.Bins(), pub.Coins(), *grp, *shards, ledgerDesc(budget), storeDesc(*storeDir))

	select {
	case <-done:
	case <-ctx.Done():
		log.Printf("signal received: shutting down gracefully")
	}

	// Close the door and drain in-flight connections within the grace
	// period. A stray connection that never completes (half-open peer,
	// port scanner) only forfeits the drain: finalize and audit below get
	// their own fresh budgets, so the verified release is still produced
	// from whatever was accepted.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *grace)
	defer cancelDrain()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("listener drain: %v", err)
	}

	mu.Lock()
	n := accepted
	mu.Unlock()
	if n == 0 {
		log.Printf("no accepted submissions; aborting session without a release")
		return
	}
	if n < *clients {
		log.Printf("finalizing early with %d/%d clients", n, *clients)
	}

	finalizeCtx, cancelFinalize := context.WithTimeout(context.Background(), *grace)
	defer cancelFinalize()
	if sharded != nil {
		finalizeSharded(finalizeCtx, pub, sharded, *storeDir)
		return
	}
	res, err := sess.Finalize(finalizeCtx)
	if err != nil {
		log.Fatalf("protocol finalize failed: %v", err)
	}
	printRelease(res.Release)
	if err := vdp.AuditContext(finalizeCtx, pub, res.Transcript); err != nil {
		log.Fatalf("self-audit failed: %v", err)
	}
	fmt.Println("transcript audit: PASSED")
	if *storeDir != "" {
		fmt.Printf("epoch %d sealed in %s; audit offline with: vdpclient -audit-store %s\n",
			sess.Epoch(), filepath.Join(*storeDir, boardLogName), *storeDir)
	}
}

// finalizeSharded closes every shard in parallel, prints the merged release
// with the per-shard breakdown, and self-audits the merged epoch.
func finalizeSharded(ctx context.Context, pub *vdp.Public, sharded *vdp.ShardedSession, storeDir string) {
	res, err := sharded.Finalize(ctx)
	if err != nil {
		log.Fatalf("protocol finalize failed: %v", err)
	}
	printRelease(res.Release)
	for i, sr := range res.Shards {
		fmt.Printf("  shard %d: %d clients on its board\n", i, len(sr.Transcript.Clients))
	}
	if err := vdp.AuditMerged(ctx, pub, res.Transcripts(), res.Release, 0); err != nil {
		log.Fatalf("merged self-audit failed: %v", err)
	}
	fmt.Printf("merged transcript audit: PASSED (digest %x...)\n", res.Digest[:8])
	if storeDir != "" {
		fmt.Printf("epoch %d sealed across %d segments in %s; audit offline with: vdpclient -audit-store %s\n",
			sharded.Epoch(), sharded.Shards(), storeDir, storeDir)
	}
}

func printRelease(rel *vdp.Release) {
	fmt.Println("verified release:")
	for j, raw := range rel.Raw {
		fmt.Printf("  bin %d: raw=%d estimate=%.1f (±%.1f)\n", j, raw, rel.Estimate[j], rel.Stddev)
	}
}

// openSession opens the board store under storeDir (creating the directory)
// and either starts a fresh durable session or — when the store already
// holds records — recovers the interrupted one. Exactly one of the returned
// sessions is non-nil: the plain one for shards <= 1, the sharded one
// otherwise. An empty storeDir keeps the board in memory. A non-nil budget
// enables the privacy-budget ledger on whichever session opens — on the
// resume paths it is also the policy the recorded charge chain is re-checked
// against.
func openSession(ctx context.Context, pub *vdp.Public, storeDir string, budget *vdp.BudgetConfig, shards int) (*vdp.Session, *vdp.ShardedSession, func() error, error) {
	if shards > 1 {
		return openShardedSession(ctx, pub, storeDir, budget, shards)
	}
	if storeDir == "" {
		sess, err := vdp.NewSession(pub, vdp.SessionOptions{Budget: budget})
		return sess, nil, nil, err
	}
	// A directory laid out by a sharded incarnation (even with one shard —
	// OpenSegmentedLog(dir, 1) is valid library usage) must be recovered
	// through the segmented path, never shadowed by a fresh unsharded board
	// next to the old evidence. Adopt the manifest's recorded shard count.
	if store.IsSegmented(storeDir) {
		log.Printf("%s holds a segmented board log; adopting its recorded shard count", storeDir)
		return openShardedSession(ctx, pub, storeDir, budget, 0)
	}
	if err := os.MkdirAll(storeDir, 0o755); err != nil {
		return nil, nil, nil, err
	}
	boardLog, err := store.OpenFileLog(filepath.Join(storeDir, boardLogName))
	if err != nil {
		return nil, nil, nil, err
	}
	if tb := boardLog.Truncated(); tb > 0 {
		log.Printf("board log: discarded %d torn-tail bytes from an interrupted append", tb)
	}
	opts := vdp.SessionOptions{Store: boardLog, Budget: budget}
	if boardLog.Len() == 0 {
		sess, err := vdp.NewSession(pub, opts)
		if err != nil {
			boardLog.Close()
			return nil, nil, nil, err
		}
		return sess, nil, boardLog.Close, nil
	}
	sess, err := vdp.ResumeSession(ctx, pub, opts)
	if err != nil {
		boardLog.Close()
		return nil, nil, nil, fmt.Errorf("recovering board log: %w", err)
	}
	if sess.Finalized() {
		// The previous incarnation sealed its epoch; compact it — the
		// snapshot pins the sealed digest and becomes the epoch boundary, so
		// the next restart boots from it instead of replaying the whole log.
		// A finalized epoch whose seal was lost mid-append cannot be
		// snapshotted; Reset closes it the old way.
		if err := sess.Compact(); err != nil {
			if err = sess.Reset(); err != nil {
				boardLog.Close()
				return nil, nil, nil, err
			}
		}
		log.Printf("recovered board log: last epoch sealed, compacted, opening epoch %d", sess.Epoch())
	} else {
		log.Printf("recovered board log: resuming epoch %d with %d submissions (%d rejected)",
			sess.Epoch(), sess.Submitted(), len(sess.Rejected()))
	}
	return sess, nil, boardLog.Close, nil
}

// openShardedSession is openSession's sharded counterpart: the store is a
// segmented log (manifest + one segment per shard) under storeDir.
func openShardedSession(ctx context.Context, pub *vdp.Public, storeDir string, budget *vdp.BudgetConfig, shards int) (*vdp.Session, *vdp.ShardedSession, func() error, error) {
	if storeDir == "" {
		ss, err := vdp.NewShardedSession(pub, vdp.SessionOptions{Shards: shards, Budget: budget})
		return nil, ss, nil, err
	}
	// The converse of the unsharded guard: an unsharded incarnation's board
	// must be recovered without -shards, not buried under a fresh manifest.
	if _, err := os.Stat(filepath.Join(storeDir, boardLogName)); err == nil {
		return nil, nil, nil, fmt.Errorf("%s holds an unsharded board log; restart without -shards to recover it", storeDir)
	}
	seg, err := store.OpenSegmentedLog(storeDir, shards)
	if err != nil {
		return nil, nil, nil, err
	}
	opts := vdp.SessionOptions{Segmented: seg, Budget: budget}
	if seg.Empty() {
		ss, err := vdp.NewShardedSession(pub, opts)
		if err != nil {
			seg.Close()
			return nil, nil, nil, err
		}
		return nil, ss, seg.Close, nil
	}
	ss, err := vdp.ResumeShardedSession(ctx, pub, opts)
	if err != nil {
		seg.Close()
		return nil, nil, nil, fmt.Errorf("recovering segmented board log: %w", err)
	}
	if ss.Finalized() {
		// Compact the sealed epoch (per-shard snapshots pin the digests, so
		// the next boot skips the replay); fall back to Reset when a shard's
		// sealed transcript did not survive.
		if err := ss.Compact(); err != nil {
			if err = ss.Reset(); err != nil {
				seg.Close()
				return nil, nil, nil, err
			}
		}
		log.Printf("recovered segmented board log: last epoch sealed, compacted, opening epoch %d", ss.Epoch())
	} else {
		log.Printf("recovered segmented board log: resuming epoch %d with %d submissions across %d shards (%d rejected)",
			ss.Epoch(), ss.Submitted(), ss.Shards(), len(ss.Rejected()))
	}
	return nil, ss, seg.Close, nil
}

func storeDesc(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}

func setupFromFlags(grpName string, bins, coins int, eps, delta float64) (*vdp.Public, error) {
	g, err := group.ByName(grpName)
	if err != nil {
		return nil, err
	}
	return vdp.Setup(vdp.Config{Group: g, Provers: 1, Bins: bins, Coins: coins, Epsilon: eps, Delta: delta})
}

// decodeSubmission splits a submit payload: u32 publicLen | public | payload.
func decodeSubmission(pub *vdp.Public, b []byte) (*vdp.ClientPublic, *vdp.ClientPayload, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("short submission")
	}
	n := binary.BigEndian.Uint32(b[:4])
	if int(n) > len(b)-4 {
		return nil, nil, fmt.Errorf("submission length field out of range")
	}
	cp, err := pub.DecodeClientPublic(b[4 : 4+n])
	if err != nil {
		return nil, nil, err
	}
	pl, err := pub.DecodeClientPayload(b[4+n:])
	if err != nil {
		return nil, nil, err
	}
	if pl.ClientID != cp.ID || pl.Prover != 0 {
		return nil, nil, fmt.Errorf("submission parts disagree on identity")
	}
	return cp, pl, nil
}
