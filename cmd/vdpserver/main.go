// Command vdpserver runs a verifiable-DP aggregation service in the
// trusted-curator model: it accepts client submissions over TCP, and once
// the expected number have arrived it executes ΠBin (validating every
// client proof, generating verifiable Binomial noise, producing the audit
// transcript) and prints the verified release.
//
// The deployment configuration flags must match the ones clients use, since
// the Σ-proof session context binds submissions to the exact deployment.
//
// Example (two shells):
//
//	vdpserver -addr 127.0.0.1:7001 -clients 3 -bins 2 -coins 32
//	for i in 0 1 2; do vdpclient -addr 127.0.0.1:7001 -id $i -choice 1 -bins 2 -coins 32; done
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"

	"repro/internal/group"
	"repro/internal/transport"
	"repro/internal/vdp"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7001", "listen address")
		clients = flag.Int("clients", 3, "number of client submissions to wait for")
		bins    = flag.Int("bins", 1, "histogram bins (1 = counting query)")
		coins   = flag.Int("coins", 64, "noise coins nb (0 = calibrate from -eps/-delta)")
		eps     = flag.Float64("eps", 1.0, "epsilon (used when -coins 0)")
		delta   = flag.Float64("delta", 1e-6, "delta (used when -coins 0)")
		grp     = flag.String("group", "p256", "commitment group: p256|schnorr2048")
	)
	flag.Parse()

	pub, err := setupFromFlags(*grp, *bins, *coins, *eps, *delta)
	if err != nil {
		log.Fatal(err)
	}

	var (
		mu       sync.Mutex
		publics  []*vdp.ClientPublic
		payloads = map[int][]*vdp.ClientPayload{}
		done     = make(chan struct{})
	)

	handler := func(f *transport.Frame) ([]*transport.Frame, error) {
		if f.Kind != "submit" {
			return nil, fmt.Errorf("unexpected frame kind %q", f.Kind)
		}
		cp, pl, err := decodeSubmission(pub, f.Payload)
		if err != nil {
			return nil, err
		}
		// Validate eagerly so the client learns its fate immediately.
		if err := pub.VerifyClient(cp); err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		if _, dup := payloads[cp.ID]; dup {
			return nil, fmt.Errorf("duplicate submission from client %d", cp.ID)
		}
		publics = append(publics, cp)
		payloads[cp.ID] = []*vdp.ClientPayload{pl}
		log.Printf("accepted client %d (%d/%d)", cp.ID, len(publics), *clients)
		if len(publics) == *clients {
			close(done)
		}
		return []*transport.Frame{{Kind: "ack", Payload: []byte("accepted")}}, nil
	}

	srv, err := transport.Listen(*addr, handler)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("verifiable-dp curator listening on %s (K=1, M=%d, nb=%d, group=%s)",
		srv.Addr(), pub.Bins(), pub.Coins(), *grp)

	<-done
	_ = srv.Close()

	mu.Lock()
	defer mu.Unlock()
	res, err := vdp.RunWithSubmissions(pub, publics, payloads, nil)
	if err != nil {
		log.Fatalf("protocol run failed: %v", err)
	}
	fmt.Println("verified release:")
	for j, raw := range res.Release.Raw {
		fmt.Printf("  bin %d: raw=%d estimate=%.1f (±%.1f)\n", j, raw, res.Release.Estimate[j], res.Release.Stddev)
	}
	if err := vdp.Audit(pub, res.Transcript); err != nil {
		log.Fatalf("self-audit failed: %v", err)
	}
	fmt.Println("transcript audit: PASSED")
	os.Exit(0)
}

func setupFromFlags(grpName string, bins, coins int, eps, delta float64) (*vdp.Public, error) {
	g, err := group.ByName(grpName)
	if err != nil {
		return nil, err
	}
	return vdp.Setup(vdp.Config{Group: g, Provers: 1, Bins: bins, Coins: coins, Epsilon: eps, Delta: delta})
}

// decodeSubmission splits a submit payload: u32 publicLen | public | payload.
func decodeSubmission(pub *vdp.Public, b []byte) (*vdp.ClientPublic, *vdp.ClientPayload, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("short submission")
	}
	n := binary.BigEndian.Uint32(b[:4])
	if int(n) > len(b)-4 {
		return nil, nil, fmt.Errorf("submission length field out of range")
	}
	cp, err := pub.DecodeClientPublic(b[4 : 4+n])
	if err != nil {
		return nil, nil, err
	}
	pl, err := pub.DecodeClientPayload(b[4+n:])
	if err != nil {
		return nil, nil, err
	}
	if pl.ClientID != cp.ID || pl.Prover != 0 {
		return nil, nil, fmt.Errorf("submission parts disagree on identity")
	}
	return cp, pl, nil
}
