package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sketch"
	"repro/internal/transport"
	"repro/internal/vdp"
)

func sketchTestPublic(t *testing.T, width, coins int) *vdp.Public {
	t.Helper()
	pub, err := vdp.Setup(vdp.Config{Provers: 1, Bins: width, Coins: coins})
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

func TestParseLedgerFlag(t *testing.T) {
	if b, err := parseLedgerFlag(""); err != nil || b != nil {
		t.Fatalf("empty -ledger: budget=%v err=%v, want nil/nil", b, err)
	}
	b, err := parseLedgerFlag("0.5,1")
	if err != nil {
		t.Fatal(err)
	}
	if b.EpochCost != 500_000 || b.Total != 1_000_000 {
		t.Fatalf("parseLedgerFlag(\"0.5,1\") = %+v", b)
	}
	if got := ledgerDesc(b); got != "0.5ε/epoch of 1ε" {
		t.Fatalf("ledgerDesc = %q", got)
	}
	if got := ledgerDesc(nil); got != "off" {
		t.Fatalf("ledgerDesc(nil) = %q", got)
	}
	if _, err := parseLedgerFlag("nonsense"); err == nil {
		t.Fatal("malformed -ledger accepted")
	}
}

func TestGroupContributions(t *testing.T) {
	layout := sketch.Layout{Rows: 2, Width: 4, Domain: 8}
	pub := sketchTestPublic(t, layout.Width, 4)
	c0, err := pub.NewSketchContribution(layout, 1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := pub.NewSketchContribution(layout, 2, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	subs := append(append([]*vdp.ClientSubmission{}, c0.Rows...), c1.Rows...)

	got, err := groupContributions(layout, subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ClientID != 1 || got[1].ClientID != 2 {
		t.Fatalf("grouped %d contributions (%+v), want clients 1 and 2", len(got), got)
	}

	if _, err := groupContributions(layout, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := groupContributions(layout, subs[:3]); err == nil {
		t.Error("non-multiple-of-Rows batch accepted")
	}
	if _, err := groupContributions(layout, []*vdp.ClientSubmission{subs[0], nil}); err == nil {
		t.Error("batch with a nil submission accepted")
	}
	interleaved := []*vdp.ClientSubmission{c0.Rows[0], c1.Rows[1]}
	if _, err := groupContributions(layout, interleaved); err == nil {
		t.Error("batch interleaving two clients inside one contribution accepted")
	}
}

func TestOpenSketchSessionLifecycle(t *testing.T) {
	layout := sketch.Layout{Rows: 2, Width: 4, Domain: 8}
	pub := sketchTestPublic(t, layout.Width, 4)
	ctx := context.Background()

	// Memory mode: no store, no closer.
	hs, closer, err := openSketchSession(ctx, pub, layout, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if closer != nil {
		t.Error("memory mode returned a store closer")
	}
	if hs.Resumed() {
		t.Error("fresh memory session claims recovery")
	}

	// Durable: fresh dir, one contribution, seal, close.
	dir := t.TempDir()
	hs, closer, err = openSketchSession(ctx, pub, layout, nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pub.NewSketchContribution(layout, 7, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := hs.Submit(ctx, c); err != nil {
		t.Fatal(err)
	}
	if _, err := hs.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}

	// Reopen over the sealed epoch: compacted forward to epoch 1.
	hs, closer, err = openSketchSession(ctx, pub, layout, nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !hs.Resumed() || hs.Epoch() != 1 {
		t.Fatalf("reopen over sealed epoch: resumed=%v epoch=%d, want true/1", hs.Resumed(), hs.Epoch())
	}
	// Leave epoch 1 open with one contribution and crash.
	c2, err := pub.NewSketchContribution(layout, 8, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := hs.Submit(ctx, c2); err != nil {
		t.Fatal(err)
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}

	// Reopen mid-epoch: resume in place with the roster intact.
	hs, closer, err = openSketchSession(ctx, pub, layout, nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Epoch() != 1 || hs.Row(0).Accepted() != 1 {
		t.Fatalf("mid-epoch resume: epoch=%d accepted=%d, want 1/1", hs.Epoch(), hs.Row(0).Accepted())
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}

	// A directory holding an unsharded board log is refused.
	plain := t.TempDir()
	if err := os.WriteFile(filepath.Join(plain, boardLogName), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openSketchSession(ctx, pub, layout, nil, plain); err == nil {
		t.Error("unsharded board-log directory accepted for sketch mode")
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// roundTrip dials, exchanges one frame, and hangs up — the vdpclient usage
// pattern. One conn per exchange matters because the server drops the
// connection after answering a handler error with an "error" frame.
func roundTrip(t *testing.T, addr string, f *transport.Frame) *transport.Frame {
	t.Helper()
	opts := transport.ClientOptions{Timeout: 2 * time.Second}
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := transport.DialClient(addr, opts)
		if err != nil {
			if time.Now().After(deadline) {
				t.Fatalf("dialing %s: %v", addr, err)
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		reply, err := c.RoundTrip(f)
		c.Close()
		if err != nil {
			t.Fatalf("round trip to %s: %v", addr, err)
		}
		return reply
	}
}

// TestRunSketchServesAnEpoch drives the serving loop end to end over real
// TCP: a pre-release query is refused, a foreign frame kind is explained,
// two contributions fill the epoch, and the released sketch answers top-k
// and point queries during the -serve-queries window.
func TestRunSketchServesAnEpoch(t *testing.T) {
	layout := sketch.Layout{Rows: 2, Width: 4, Domain: 8}
	pub := sketchTestPublic(t, layout.Width, 4)
	budget, err := vdp.ParseBudget("0.5,1")
	if err != nil {
		t.Fatal(err)
	}

	addr := freeAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runSketch(ctx, pub, layout, budget, addr, "", 2, 10*time.Second, time.Minute)
	}()

	topQuery := &transport.Frame{Kind: "sketch-query",
		Payload: vdp.EncodeSketchQuery(&vdp.SketchQuery{Kind: vdp.SketchQueryTopK, Arg: 3})}
	reply := roundTrip(t, addr, topQuery)
	if reply.Kind != "error" || !strings.Contains(string(reply.Payload), "still collecting") {
		t.Fatalf("pre-release query got %q %q, want a still-collecting refusal", reply.Kind, reply.Payload)
	}

	reply = roundTrip(t, addr, &transport.Frame{Kind: "submit"})
	if reply.Kind != "error" || !strings.Contains(string(reply.Payload), "sketch mode") {
		t.Fatalf("plain submit got %q %q, want the sketch-mode explainer", reply.Kind, reply.Payload)
	}

	var subs []*vdp.ClientSubmission
	for id := 0; id < 2; id++ {
		ct, err := pub.NewSketchContribution(layout, id, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, ct.Rows...)
	}
	reply = roundTrip(t, addr, &transport.Frame{Kind: "submit-batch", Payload: pub.EncodeSubmissionBatch(subs)})
	if reply.Kind != "batch-verdicts" {
		t.Fatalf("submit-batch got %q %q", reply.Kind, reply.Payload)
	}
	verdicts, err := vdp.DecodeBatchVerdicts(reply.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 2 {
		t.Fatalf("got %d verdicts, want one per contribution (2)", len(verdicts))
	}
	for _, v := range verdicts {
		if !v.Accepted {
			t.Fatalf("client %d refused: %s", v.ID, v.Reason)
		}
	}

	// The epoch is full; poll until the release is being served.
	deadline := time.Now().Add(15 * time.Second)
	var items []vdp.ItemEstimate
	for {
		reply = roundTrip(t, addr, topQuery)
		if reply.Kind == "sketch-estimates" {
			if items, err = vdp.DecodeItemEstimates(reply.Payload); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("release never served: last reply %q %q", reply.Kind, reply.Payload)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(items) != 3 {
		t.Fatalf("top-3 returned %d items", len(items))
	}

	reply = roundTrip(t, addr, &transport.Frame{Kind: "sketch-query",
		Payload: vdp.EncodeSketchQuery(&vdp.SketchQuery{Kind: vdp.SketchQueryPoint, Arg: 5})})
	if reply.Kind != "sketch-estimates" {
		t.Fatalf("point query got %q %q", reply.Kind, reply.Payload)
	}
	pts, err := vdp.DecodeItemEstimates(reply.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Item != 5 {
		t.Fatalf("point query returned %+v, want one estimate for item 5", pts)
	}
	// Both contributions reported item 5; the debiased estimate must sit
	// within the advertised bound of the true count.
	if diff := pts[0].Estimate - 2; diff > pts[0].Bound || -diff > pts[0].Bound {
		t.Errorf("point estimate %.1f is further than ±%.1f from the true count 2", pts[0].Estimate, pts[0].Bound)
	}

	cancel() // ends the serve window early
	wg.Wait()
}

// TestRunSketchAbortsEmptyEpoch: a signal before any admission shuts down
// without a release.
func TestRunSketchAbortsEmptyEpoch(t *testing.T) {
	layout := sketch.Layout{Rows: 2, Width: 4, Domain: 8}
	pub := sketchTestPublic(t, layout.Width, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runSketch(ctx, pub, layout, nil, "127.0.0.1:0", "", 1, time.Second, 0)
}
