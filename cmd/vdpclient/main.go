// Command vdpclient submits one client input to a vdpserver curator: it
// secret-shares the input (trivially, for K = 1), commits to the shares,
// attaches the zero-knowledge legality proof, and sends the bundle over
// TCP. The deployment flags must match the server's.
//
// Example:
//
//	vdpclient -addr 127.0.0.1:7001 -id 0 -choice 1 -bins 2 -coins 32
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/group"
	"repro/internal/transport"
	"repro/internal/vdp"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7001", "server address")
		id      = flag.Int("id", 0, "client ID (unique per deployment)")
		choice  = flag.Int("choice", 0, "input: the bit for -bins 1, else the bin index")
		bins    = flag.Int("bins", 1, "histogram bins (must match server)")
		coins   = flag.Int("coins", 64, "noise coins (must match server)")
		eps     = flag.Float64("eps", 1.0, "epsilon (must match server when -coins 0)")
		delta   = flag.Float64("delta", 1e-6, "delta (must match server when -coins 0)")
		grp     = flag.String("group", "p256", "commitment group (must match server)")
		timeout = flag.Duration("timeout", 30*time.Second, "submission round-trip deadline (0 = none)")
	)
	flag.Parse()

	g, err := group.ByName(*grp)
	if err != nil {
		log.Fatal(err)
	}
	pub, err := vdp.Setup(vdp.Config{Group: g, Provers: 1, Bins: *bins, Coins: *coins, Epsilon: *eps, Delta: *delta})
	if err != nil {
		log.Fatal(err)
	}
	sub, err := pub.NewClientSubmission(*id, *choice, nil)
	if err != nil {
		log.Fatalf("building submission: %v", err)
	}

	pubEnc := pub.EncodeClientPublic(sub.Public)
	plEnc := pub.EncodeClientPayload(sub.Payloads[0])
	payload := make([]byte, 4, 4+len(pubEnc)+len(plEnc))
	binary.BigEndian.PutUint32(payload, uint32(len(pubEnc)))
	payload = append(payload, pubEnc...)
	payload = append(payload, plEnc...)

	conn, err := transport.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	if *timeout > 0 {
		// The server verifies eagerly and answers on this connection, so one
		// deadline covers the whole submit→verdict round trip.
		if err := conn.SetDeadline(time.Now().Add(*timeout)); err != nil {
			log.Fatal(err)
		}
	}
	if err := transport.WriteFrame(conn, &transport.Frame{Kind: "submit", Sender: *id, Payload: payload}); err != nil {
		log.Fatal(err)
	}
	reply, err := transport.ReadFrame(conn)
	if err != nil {
		log.Fatalf("reading server reply: %v", err)
	}
	switch reply.Kind {
	case "ack":
		fmt.Printf("client %d: submission accepted (%s)\n", *id, reply.Payload)
	case "error":
		log.Fatalf("client %d: server rejected submission: %s", *id, reply.Payload)
	default:
		log.Fatalf("client %d: unexpected reply %q", *id, reply.Kind)
	}
}
