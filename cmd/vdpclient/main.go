// Command vdpclient submits one client input to a vdpserver curator: it
// secret-shares the input (trivially, for K = 1), commits to the shares,
// attaches the zero-knowledge legality proof, and sends the bundle over
// TCP. The deployment flags must match the server's.
//
// With -batch N it floods instead: N full submissions (IDs -id through
// -id+N-1, all with the same -choice) travel in ONE "submit-batch" frame,
// the server admits them under a single lock pass + fsync window + folded
// Σ-OR check, and the reply is one frame with a per-client verdict each.
// This is both the load generator for throughput measurements and the
// natural mode for a gateway submitting on behalf of many devices.
//
// With -audit-store it instead plays the third-party auditor, entirely
// offline: the server's durable board log is replayed, a sealed epoch's
// transcript is decoded, every proof and the final aggregate are
// re-verified, and the seal is cross-checked against the log's own
// per-arrival records. No network, no server cooperation — the log file is
// the whole input.
//
// With -follow it plays the auditor live: given the cluster's node
// addresses in shard order, it tails every node's bulletin board over the
// node-log RPC while the epoch is still open, verifies each submission as
// it arrives, and certifies each merged epoch the instant its seals land —
// the paper's public verifiability made continuous, with no trust in the
// router or any single node.
//
// With -sketch RxWxD it speaks to a heavy-hitters server: -item sends a
// whole sketch contribution (one committed one-hot vector per count-min
// row, all in one batch frame), -query top:K / point:ITEM reads estimates
// back from the finalized, released sketch, and -audit-store re-verifies a
// sketch store offline — rows, roster containment, budget chain and merged
// seal.
//
// Examples:
//
//	vdpclient -addr 127.0.0.1:7001 -id 0 -choice 1 -bins 2 -coins 32
//	vdpclient -addr 127.0.0.1:7001 -sketch 4x16x1024 -id 7 -item 42 -coins 8
//	vdpclient -addr 127.0.0.1:7001 -query top:10
//	vdpclient -sketch 4x16x1024 -audit-store /var/lib/vdp -coins 8
//	vdpclient -addr 127.0.0.1:7001 -id 100 -batch 64 -choice 1 -bins 2 -coins 32
//	vdpclient -audit-store /var/lib/vdp -bins 2 -coins 32          # latest epoch
//	vdpclient -audit-store /var/lib/vdp -epoch 0 -bins 2 -coins 32 # specific epoch
//	vdpclient -follow 127.0.0.1:7410,127.0.0.1:7411,127.0.0.1:7412 -bins 2 -coins 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/group"
	"repro/internal/sketch"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/vdp"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7001", "server address")
		id         = flag.Int("id", 0, "client ID (unique per deployment)")
		choice     = flag.Int("choice", 0, "input: the bit for -bins 1, else the bin index")
		bins       = flag.Int("bins", 1, "histogram bins (must match server)")
		coins      = flag.Int("coins", 64, "noise coins (must match server)")
		eps        = flag.Float64("eps", 1.0, "epsilon (must match server when -coins 0)")
		delta      = flag.Float64("delta", 1e-6, "delta (must match server when -coins 0)")
		grp        = flag.String("group", "p256", "commitment group (must match server)")
		timeout    = flag.Duration("timeout", 30*time.Second, "submission round-trip deadline (0 = none)")
		retries    = flag.Int("retries", 0, "redial attempts after a transient dial failure (0 = fail on first error)")
		backoff    = flag.Duration("backoff", 100*time.Millisecond, "initial retry backoff (doubles per attempt, capped at 2s)")
		batch      = flag.Int("batch", 0, "flood mode: send this many submissions (IDs -id..) in one batch frame")
		auditStore = flag.String("audit-store", "", "audit a server's board log directory offline instead of submitting")
		epoch      = flag.Int("epoch", -1, "epoch to audit with -audit-store (-1 = latest sealed)")
		follow     = flag.String("follow", "", "live-audit mode: comma-separated node addresses in shard order")
		followN    = flag.Int("follow-epochs", 1, "with -follow, exit after this many merged epochs verify (0 = follow forever)")
		interval   = flag.Duration("interval", 200*time.Millisecond, "with -follow, the poll interval between log fetches")
		sketchSp   = flag.String("sketch", "", "heavy-hitters deployment RxWxD (must match vdpserver -sketch; overrides -bins with W)")
		item       = flag.Int("item", -1, "with -sketch: contribute this item (one committed one-hot vector per row)")
		query      = flag.String("query", "", "query a finalized sketch server: \"top:K\" or \"point:ITEM\"")
	)
	flag.Parse()

	binsEff := *bins
	var layout sketch.Layout
	if *sketchSp != "" {
		var err error
		if layout, err = sketch.ParseLayout(*sketchSp); err != nil {
			log.Fatal(err)
		}
		binsEff = layout.Width
	}

	g, err := group.ByName(*grp)
	if err != nil {
		log.Fatal(err)
	}
	pub, err := vdp.Setup(vdp.Config{Group: g, Provers: 1, Bins: binsEff, Coins: *coins, Epsilon: *eps, Delta: *delta})
	if err != nil {
		log.Fatal(err)
	}

	if *follow != "" {
		opts := transport.ClientOptions{
			Timeout: *timeout,
			Retry:   transport.RetryPolicy{Retries: *retries, Backoff: *backoff, MaxBackoff: 2 * time.Second},
		}
		followCluster(pub, strings.Split(*follow, ","), *followN, *interval, opts)
		return
	}
	if *auditStore != "" {
		// The -timeout default is sized for a network round trip, not for
		// re-verifying a whole epoch; only bound the offline audit when the
		// operator set the flag explicitly.
		auditDeadline := time.Duration(0)
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "timeout" {
				auditDeadline = *timeout
			}
		})
		if *sketchSp != "" {
			auditSketch(pub, layout, *auditStore, *epoch, auditDeadline)
			return
		}
		auditOffline(pub, *auditStore, *epoch, auditDeadline)
		return
	}
	opts := transport.ClientOptions{
		Timeout: *timeout,
		Retry:   transport.RetryPolicy{Retries: *retries, Backoff: *backoff, MaxBackoff: 2 * time.Second},
	}
	if *query != "" {
		querySketch(*addr, *query, opts)
		return
	}
	if *sketchSp != "" {
		if *item < 0 || *item >= layout.Domain {
			log.Fatalf("-sketch needs -item in [0, %d) (got %d)", layout.Domain, *item)
		}
		n := *batch
		if n == 0 {
			n = 1
		}
		submitSketch(pub, layout, *addr, *id, *item, n, opts)
		return
	}
	if *batch > 0 {
		submitBatch(pub, *addr, *id, *choice, *batch, opts)
		return
	}
	sub, err := pub.NewClientSubmission(*id, *choice, nil)
	if err != nil {
		log.Fatalf("building submission: %v", err)
	}
	payload, err := pub.EncodeSubmitPayload(sub)
	if err != nil {
		log.Fatalf("encoding submission: %v", err)
	}

	// Dial retries ride the shared backoff policy; once connected, the
	// server verifies eagerly and answers on this connection, so each frame
	// leg gets the -timeout deadline.
	c, err := transport.DialClient(*addr, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	reply, err := c.RoundTrip(&transport.Frame{Kind: "submit", Sender: *id, Payload: payload})
	if err != nil {
		log.Fatalf("submitting: %v", err)
	}
	switch reply.Kind {
	case "ack":
		fmt.Printf("client %d: submission accepted (%s)\n", *id, reply.Payload)
	case "error":
		log.Fatalf("client %d: server rejected submission: %s", *id, reply.Payload)
	default:
		log.Fatalf("client %d: unexpected reply %q", *id, reply.Kind)
	}
}

// submitBatch builds n full submissions and sends them in one
// "submit-batch" frame, then reports the server's per-client verdicts. One
// connection, one frame, one reply — the round trip a gateway aggregating
// many devices (or a load generator) pays per n clients.
func submitBatch(pub *vdp.Public, addr string, firstID, choice, n int, opts transport.ClientOptions) {
	if n > vdp.MaxBatchClients {
		log.Fatalf("-batch %d exceeds the per-frame limit of %d", n, vdp.MaxBatchClients)
	}
	subs := make([]*vdp.ClientSubmission, n)
	for i := range subs {
		sub, err := pub.NewClientSubmission(firstID+i, choice, nil)
		if err != nil {
			log.Fatalf("building submission %d: %v", firstID+i, err)
		}
		subs[i] = sub
	}
	c, err := transport.DialClient(addr, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	frame := &transport.Frame{Kind: "submit-batch", Sender: firstID, Payload: pub.EncodeSubmissionBatch(subs)}
	reply, err := c.RoundTrip(frame)
	if err != nil {
		log.Fatalf("submitting batch: %v", err)
	}
	switch reply.Kind {
	case "batch-verdicts":
		verdicts, err := vdp.DecodeBatchVerdicts(reply.Payload)
		if err != nil {
			log.Fatalf("decoding verdicts: %v", err)
		}
		elapsed := time.Since(start)
		ok := 0
		for _, v := range verdicts {
			if v.Accepted {
				ok++
			} else {
				fmt.Printf("client %d: REJECTED: %s\n", v.ID, v.Reason)
			}
		}
		fmt.Printf("batch of %d: %d accepted, %d rejected in %v (%.0f submissions/sec)\n",
			n, ok, n-ok, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
		if ok < n {
			os.Exit(1)
		}
	case "error":
		log.Fatalf("server rejected batch: %s", reply.Payload)
	default:
		log.Fatalf("unexpected reply %q", reply.Kind)
	}
}

// submitSketch builds n whole sketch contributions — layout.Rows committed
// one-hot vectors each, bucketed by the shared row hashes of -item — and
// sends them in one "submit-batch" frame. The server reassembles the rows
// into contributions and answers one verdict per contribution, so a budget
// refusal (or any other rejection) names the client, not a row.
func submitSketch(pub *vdp.Public, layout sketch.Layout, addr string, firstID, item, n int, opts transport.ClientOptions) {
	if n*layout.Rows > vdp.MaxBatchClients {
		log.Fatalf("-batch %d needs %d row submissions, exceeding the per-frame limit of %d", n, n*layout.Rows, vdp.MaxBatchClients)
	}
	subs := make([]*vdp.ClientSubmission, 0, n*layout.Rows)
	for i := 0; i < n; i++ {
		c, err := pub.NewSketchContribution(layout, firstID+i, item, nil)
		if err != nil {
			log.Fatalf("building contribution %d: %v", firstID+i, err)
		}
		subs = append(subs, c.Rows...)
	}
	c, err := transport.DialClient(addr, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	reply, err := c.RoundTrip(&transport.Frame{Kind: "submit-batch", Sender: firstID, Payload: pub.EncodeSubmissionBatch(subs)})
	if err != nil {
		log.Fatalf("submitting contribution(s): %v", err)
	}
	switch reply.Kind {
	case "batch-verdicts":
		verdicts, err := vdp.DecodeBatchVerdicts(reply.Payload)
		if err != nil {
			log.Fatalf("decoding verdicts: %v", err)
		}
		ok := 0
		for _, v := range verdicts {
			if v.Accepted {
				ok++
			} else {
				fmt.Printf("client %d: REFUSED: %s\n", v.ID, v.Reason)
			}
		}
		fmt.Printf("%d of %d contribution(s) for item %d accepted (%d rows each)\n", ok, len(verdicts), item, layout.Rows)
		if ok < len(verdicts) {
			os.Exit(1)
		}
	case "error":
		log.Fatalf("server rejected contribution(s): %s", reply.Payload)
	default:
		log.Fatalf("unexpected reply %q", reply.Kind)
	}
}

// querySketch sends one "top:K" or "point:ITEM" query to a sketch-mode
// server and prints the estimates with their error bound. The server only
// answers once its epoch has finalized — estimates come from the released,
// publicly-auditable sketch, never from a board still in flight.
func querySketch(addr, spec string, opts transport.ClientOptions) {
	kind, argStr, ok := strings.Cut(spec, ":")
	if !ok {
		log.Fatalf("-query %q is not of the form top:K or point:ITEM", spec)
	}
	arg, err := strconv.Atoi(strings.TrimSpace(argStr))
	if err != nil || arg < 0 {
		log.Fatalf("-query %q: %q is not a non-negative integer", spec, argStr)
	}
	q := &vdp.SketchQuery{Arg: arg}
	switch strings.TrimSpace(kind) {
	case "top":
		q.Kind = vdp.SketchQueryTopK
	case "point":
		q.Kind = vdp.SketchQueryPoint
	default:
		log.Fatalf("-query %q: unknown kind %q (want top or point)", spec, kind)
	}
	c, err := transport.DialClient(addr, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	reply, err := c.RoundTrip(&transport.Frame{Kind: "sketch-query", Payload: vdp.EncodeSketchQuery(q)})
	if err != nil {
		log.Fatalf("querying: %v", err)
	}
	switch reply.Kind {
	case "sketch-estimates":
		items, err := vdp.DecodeItemEstimates(reply.Payload)
		if err != nil {
			log.Fatalf("decoding estimates: %v", err)
		}
		if q.Kind == vdp.SketchQueryPoint {
			for _, it := range items {
				fmt.Printf("item %d: estimate %.1f (±%.1f)\n", it.Item, it.Estimate, it.Bound)
			}
			return
		}
		fmt.Printf("top %d item(s):\n", len(items))
		for rank, it := range items {
			fmt.Printf("  #%-2d item %d: estimate %.1f (±%.1f)\n", rank+1, it.Item, it.Estimate, it.Bound)
		}
	case "error":
		log.Fatalf("server refused query: %s", reply.Payload)
	default:
		log.Fatalf("unexpected reply %q", reply.Kind)
	}
}

// auditSketch plays the third-party auditor against a sketch-mode server's
// store: every row segment is re-verified like a board log, the rows are
// checked against the row-0 roster (a client cannot appear in a row it was
// never admitted to), budget charges replay to the recorded chain, and the
// merged digest must match the manifest seal.
func auditSketch(pub *vdp.Public, layout sketch.Layout, dir string, epoch int, timeout time.Duration) {
	seg, err := store.OpenSegmentedLogReadOnly(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer seg.Close()
	fmt.Printf("sketch board log: %d row segments\n", seg.Shards())

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if err := vdp.AuditSketchLog(ctx, pub, layout, seg, epoch, 0); err != nil {
		log.Fatalf("offline sketch audit FAILED: %v", err)
	}
	which := fmt.Sprintf("epoch %d", epoch)
	if epoch < 0 {
		which = "latest merged-sealed epoch"
	}
	fmt.Printf("offline sketch audit of %s: PASSED — every row's proofs, coins and aggregate check out,\n", which)
	fmt.Println("every seated client traces to a row-0 admission, and the merged digest matches the manifest seal")
}

// auditOffline replays the board log under dir and re-verifies a sealed
// epoch, exactly as an independent third party would. The log is opened
// read-only: the auditor never creates, truncates, or otherwise touches the
// evidence, so a write-protected published copy audits fine. A sharded
// server's store (manifest + per-shard segments) is detected by its
// manifest file and audited shard by shard, including the merged digest.
func auditOffline(pub *vdp.Public, dir string, epoch int, timeout time.Duration) {
	if store.IsSegmented(dir) {
		auditSharded(pub, dir, epoch, timeout)
		return
	}
	boardLog, err := store.OpenFileLogReadOnly(filepath.Join(dir, "board.log"))
	if err != nil {
		log.Fatal(err)
	}
	defer boardLog.Close()
	if tb := boardLog.Truncated(); tb > 0 {
		log.Printf("note: log ends in a %d-byte torn tail (interrupted append); auditing the intact prefix", tb)
	}

	sealed, err := vdp.SealedEpochs(boardLog)
	if err != nil {
		log.Fatalf("replaying board log: %v", err)
	}
	fmt.Printf("board log: %d records, sealed epochs %v\n", boardLog.Len(), sealed)
	latest := epoch < 0
	if latest && len(sealed) > 0 {
		// Resolve "latest" here so AuditLog needn't rescan the log for it.
		epoch = sealed[len(sealed)-1]
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if err := vdp.AuditLog(ctx, pub, boardLog, epoch, 0); err != nil {
		log.Fatalf("offline audit FAILED: %v", err)
	}
	which := fmt.Sprintf("epoch %d", epoch)
	if latest {
		which = fmt.Sprintf("latest sealed epoch (%d)", epoch)
	}
	fmt.Printf("offline audit of %s: PASSED — every proof, coin and aggregate checks out,\n", which)
	fmt.Println("and the sealed transcript matches the per-arrival submission records")
}

// auditSharded audits a sharded server's segmented board log: every shard
// segment is re-verified exactly like a single board log, the shard map is
// checked, and the recomputed merged digest must match the manifest's
// merged-seal record.
func auditSharded(pub *vdp.Public, dir string, epoch int, timeout time.Duration) {
	seg, err := store.OpenSegmentedLogReadOnly(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer seg.Close()
	fmt.Printf("segmented board log: %d shards\n", seg.Shards())

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if err := vdp.AuditSegmentedLog(ctx, pub, seg, epoch, 0); err != nil {
		log.Fatalf("offline sharded audit FAILED: %v", err)
	}
	which := fmt.Sprintf("epoch %d", epoch)
	if epoch < 0 {
		which = "latest merged-sealed epoch"
	}
	fmt.Printf("offline sharded audit of %s: PASSED — every shard's proofs, coins and aggregate check out,\n", which)
	fmt.Println("every client sits on its assigned shard, and the merged digest matches the manifest seal")
}

// followCluster live-audits a running cluster: it tails every node's board
// log over RPC, verifying records as they are appended, and certifies
// merged epochs as their seals land. With epochs > 0 it exits successfully
// after that many certifications; any divergence — a bad proof, a forged
// record, disagreeing merged seals — kills it with the offending record's
// shard and offset.
func followCluster(pub *vdp.Public, addrs []string, epochs int, interval time.Duration, opts transport.ClientOptions) {
	backends := make([]*cluster.Backend, len(addrs))
	for i, addr := range addrs {
		backends[i] = cluster.NewBackend(cluster.SplitReplicaSpec(addr), i, opts)
	}
	f, err := cluster.NewTailFollower(pub, backends, vdp.TailOptions{})
	if err != nil {
		log.Fatalf("live audit: %v", err)
	}
	fmt.Printf("live audit: following %d shards\n", len(addrs))
	certified := 0
	for {
		n, err := f.Poll()
		if err != nil {
			// Evidence failures (bad proof, rewritten history, forked seal)
			// are fatal; a node being down is not — the cluster may be mid
			// failover, so keep polling and let the follower switch replicas.
			if errors.Is(err, vdp.ErrAuditFail) {
				log.Fatalf("live audit FAILED: %v", err)
			}
			fmt.Printf("live audit: shard unreachable (%v), retrying\n", err)
			time.Sleep(interval)
			continue
		}
		if n > 0 {
			recs := f.Records()
			total := 0
			for _, r := range recs {
				total += r
			}
			fmt.Printf("live audit: +%d records (%d total)\n", n, total)
		}
		for {
			epoch, digest, ready, err := f.VerifyNext()
			if err != nil {
				if errors.Is(err, vdp.ErrAuditFail) {
					log.Fatalf("live audit FAILED: %v", err)
				}
				fmt.Printf("live audit: shard unreachable (%v), retrying\n", err)
				break
			}
			if !ready {
				break
			}
			certified++
			fmt.Printf("live audit: merged epoch %d PASSED (digest %x..., %d shards)\n",
				epoch, digest[:8], len(addrs))
			if epochs > 0 && certified >= epochs {
				fmt.Printf("live audit: %d merged epoch(s) certified — every record verified at arrival\n", certified)
				return
			}
		}
		time.Sleep(interval)
	}
}
