package main

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sketch"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/vdp"
)

// testCurator is a minimal in-process sketch-mode server: enough of
// vdpserver's handler to drive the client-side paths over real TCP.
func testCurator(t *testing.T, pub *vdp.Public, layout sketch.Layout, hs *vdp.SketchSession) (addr string, release func()) {
	t.Helper()
	ctx := context.Background()
	var mu sync.Mutex
	var released *vdp.NoisySketch
	handler := func(f *transport.Frame) ([]*transport.Frame, error) {
		switch f.Kind {
		case "submit-batch":
			subs, err := pub.DecodeSubmissionBatch(f.Payload)
			if err != nil {
				return nil, err
			}
			if len(subs) == 0 || len(subs)%layout.Rows != 0 {
				return nil, fmt.Errorf("ragged contribution bundle of %d rows", len(subs))
			}
			var vs []vdp.BatchVerdict
			for at := 0; at < len(subs); at += layout.Rows {
				rows := subs[at : at+layout.Rows]
				v := vdp.BatchVerdict{ID: rows[0].Public.ID, Accepted: true}
				if err := hs.Submit(ctx, &vdp.SketchContribution{ClientID: v.ID, Rows: rows}); err != nil {
					v.Accepted, v.Reason = false, err.Error()
				}
				vs = append(vs, v)
			}
			return []*transport.Frame{{Kind: "batch-verdicts", Payload: vdp.EncodeBatchVerdicts(vs)}}, nil
		case "sketch-query":
			q, err := vdp.DecodeSketchQuery(f.Payload)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			ns := released
			mu.Unlock()
			if ns == nil {
				return nil, fmt.Errorf("still collecting")
			}
			var items []vdp.ItemEstimate
			if q.Kind == vdp.SketchQueryPoint {
				est, bound, err := ns.PointQuery(q.Arg)
				if err != nil {
					return nil, err
				}
				items = []vdp.ItemEstimate{{Item: q.Arg, Estimate: est, Bound: bound}}
			} else {
				items = ns.HeavyHitters(q.Arg)
			}
			return []*transport.Frame{{Kind: "sketch-estimates", Payload: vdp.EncodeItemEstimates(items)}}, nil
		}
		return nil, fmt.Errorf("unexpected frame kind %q", f.Kind)
	}
	srv, err := transport.Listen("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	return srv.Addr(), func() {
		res, err := hs.Finalize(ctx)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		released = res.Sketch
		mu.Unlock()
	}
}

// TestSketchClientRoundTrips drives submitSketch and querySketch against a
// live curator. The helpers log.Fatal / os.Exit(1) on any refusal or
// decode failure, so reaching the end of the test is the assertion.
func TestSketchClientRoundTrips(t *testing.T) {
	layout := sketch.Layout{Rows: 2, Width: 4, Domain: 8}
	pub, err := vdp.Setup(vdp.Config{Provers: 1, Bins: layout.Width, Coins: 4})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := vdp.NewSketchSession(pub, layout, vdp.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr, release := testCurator(t, pub, layout, hs)
	opts := transport.ClientOptions{Timeout: 2 * time.Second}

	submitSketch(pub, layout, addr, 10, 5, 2, opts)
	if got := hs.Row(0).Accepted(); got != 2 {
		t.Fatalf("curator admitted %d contributions, want 2", got)
	}
	release()
	querySketch(addr, "top:3", opts)
	querySketch(addr, "point:5", opts)
}

// TestAuditSketchOffline seals a durable sketch epoch and replays it
// through the auditor entrypoint (log.Fatal on any audit failure).
func TestAuditSketchOffline(t *testing.T) {
	layout := sketch.Layout{Rows: 2, Width: 4, Domain: 8}
	pub, err := vdp.Setup(vdp.Config{Provers: 1, Bins: layout.Width, Coins: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	seg, err := store.OpenSegmentedLog(dir, layout.Rows)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := vdp.NewSketchSession(pub, layout, vdp.SessionOptions{Segmented: seg})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c, err := pub.NewSketchContribution(layout, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := hs.Submit(ctx, c); err != nil {
		t.Fatal(err)
	}
	if _, err := hs.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	auditSketch(pub, layout, dir, -1, 5*time.Second)
}
