// Package verifiabledp is the public API of this reproduction of
// "Verifiable Differential Privacy" (Biswas & Cormode): differentially
// private counting queries and histograms whose releases come with
// zero-knowledge proofs that the DP noise was sampled faithfully and the
// statistic computed correctly.
//
// # Why
//
// Classic DP deployments let the entity holding the data add the noise. A
// malicious curator can bias the "noise" and blame the distortion on
// differential privacy — randomness is the perfect alibi. Verifiable DP
// closes the loophole: the curator (or each of K mutually distrusting
// servers) must publish commitments, Σ-protocol proofs and jointly sampled
// public coins such that any third party can check, without learning the
// noise or any client's input, that the release equals the true aggregate
// plus honestly sampled Binomial noise.
//
// # Quick start
//
//	bits := []bool{true, false, true, true}
//	res, err := verifiabledp.Count(bits, verifiabledp.Options{Epsilon: 1, Delta: 1e-6})
//	// res.Release.Estimate[0] ≈ 3, and res.Transcript audits publicly:
//	err = verifiabledp.Audit(res.Public, res.Transcript)
//
// For the multi-server (MPC) deployment and histograms, see Histogram and
// the Setup/Run layer re-exported from internal/vdp. Services that receive
// submissions over time should use the streaming Session API (NewSession /
// Submit / Finalize / Reset), which verifies each client eagerly on arrival
// and turns one engine into many releases; Count, Histogram and Run are
// batch conveniences over a one-epoch session. The examples/ directory
// contains runnable end-to-end scenarios including streaming aggregation,
// attack detection and third-party auditing.
package verifiabledp

import (
	"context"
	"fmt"
	"io"

	"repro/internal/group"
	"repro/internal/store"
	"repro/internal/vdp"
)

// Re-exported protocol types. The full protocol layer lives in
// internal/vdp; these aliases are the supported public surface.
type (
	// Config describes a deployment (group, provers K, bins M, ε, δ).
	Config = vdp.Config
	// Public is the shared public parameters established by Setup.
	Public = vdp.Public
	// Release is a verified noisy release with debiased estimates.
	Release = vdp.Release
	// Transcript is the public record that third parties can audit.
	Transcript = vdp.Transcript
	// RunResult bundles a release with its transcript and client verdicts.
	RunResult = vdp.RunResult
	// RunOptions configures a protocol run (adversary injection, RNG).
	RunOptions = vdp.RunOptions
	// Malice enumerates prover deviations for adversarial testing.
	Malice = vdp.Malice
	// ClientPublic is a client's bulletin-board submission.
	ClientPublic = vdp.ClientPublic
	// ClientPayload is a client's private per-prover message.
	ClientPayload = vdp.ClientPayload
	// ClientSubmission bundles the two.
	ClientSubmission = vdp.ClientSubmission
	// Prover is the prover-side state machine.
	Prover = vdp.Prover
	// Verifier is the public verifying algorithm.
	Verifier = vdp.Verifier
	// Engine is the staged worker-pool execution engine behind Run.
	Engine = vdp.Engine
	// Session is the streaming aggregation surface: Submit clients
	// incrementally (verified eagerly as they arrive), Finalize the epoch's
	// release, Reset for the next epoch.
	Session = vdp.Session
	// SessionOptions configures a Session (parallelism, determinism seed,
	// verification timing, durable store, shard count).
	SessionOptions = vdp.SessionOptions
	// ShardedSession is the scale-out front door: client IDs are
	// consistent-hashed across independent sub-sessions so Submits on
	// different shards never contend on a shared lock, and Finalize merges
	// the per-shard transcripts into one auditable epoch.
	ShardedSession = vdp.ShardedSession
	// ShardedResult is a finalized sharded epoch: per-shard results, the
	// combined release, and the merged transcript digest.
	ShardedResult = vdp.ShardedResult
	// Group is a commitment group (see GroupP256, GroupSchnorr2048).
	Group = group.Group
	// BoardLog is the append-only, replayable bulletin-board store a
	// durable Session writes to (see SessionOptions.Store, OpenFileLog,
	// NewMemLog).
	BoardLog = store.BoardLog
	// FileLog is the durable file-backed BoardLog: length-framed,
	// CRC-checksummed records, fsync'd on append, torn-tail recovery on
	// open.
	FileLog = store.FileLog
	// MemLog is the in-memory BoardLog (the implicit default: the board
	// dies with the process).
	MemLog = store.MemLog
	// SegmentedLog is the durable store of a sharded session: one board-log
	// segment per shard plus a manifest binding them into merged epochs.
	SegmentedLog = store.SegmentedLog
)

// Sentinel errors re-exported for errors.Is checks.
var (
	ErrBadConfig    = vdp.ErrBadConfig
	ErrClientReject = vdp.ErrClientReject
	ErrProverCheat  = vdp.ErrProverCheat
	ErrAuditFail    = vdp.ErrAuditFail
)

// GroupP256 returns the elliptic-curve commitment group (NIST P-256).
func GroupP256() Group { return group.P256() }

// GroupSchnorr2048 returns the finite-field commitment group G_q ⊂ Z*_p
// (2048-bit modulus, 256-bit prime-order subgroup) — the paper's faster
// deployment.
func GroupSchnorr2048() Group { return group.Schnorr2048() }

// Setup validates a configuration and derives public parameters.
func Setup(cfg Config) (*Public, error) { return vdp.Setup(cfg) }

// NewSession opens a streaming aggregation session over pub: submissions
// are admitted (and verified) one at a time with Submit, the verifiable
// release is produced by Finalize, and Reset reopens the session for the
// next epoch. This is the primary API for services that receive client
// submissions incrementally; Run and the Count/Histogram helpers are batch
// conveniences layered on top of it.
func NewSession(pub *Public, opts SessionOptions) (*Session, error) {
	return vdp.NewSession(pub, opts)
}

// OpenFileLog opens (or creates) a durable board log at path, recovering a
// torn tail left by a crash mid-append. Hand it to SessionOptions.Store to
// make the session's bulletin board survive restarts, and to ResumeSession
// to pick an interrupted epoch back up.
func OpenFileLog(path string, opts ...store.Option) (*FileLog, error) {
	return store.OpenFileLog(path, opts...)
}

// OpenFileLogReadOnly opens an existing board log for offline auditing:
// the file is never created, written, or truncated, so a write-protected
// published copy is valid input. Appending to it fails.
func OpenFileLogReadOnly(path string) (*FileLog, error) {
	return store.OpenFileLogReadOnly(path)
}

// NewMemLog creates an in-memory board log, useful in tests and as an
// explicit stand-in for the durable store.
func NewMemLog() *MemLog { return store.NewMemLog() }

// NewShardedSession opens a sharded streaming session: SessionOptions.Shards
// sub-sessions, each with its own engine worker slice, deterministic
// substream fork, and (with SessionOptions.Segmented) board-log segment.
// Submit routes each client to ShardOf(id, shards) without any shared lock;
// Finalize closes every shard in parallel and merges the transcripts. With
// Shards = 1 the merged transcript digest is byte-identical to a plain
// Session's under the same seed.
func NewShardedSession(pub *Public, opts SessionOptions) (*ShardedSession, error) {
	return vdp.NewShardedSession(pub, opts)
}

// ResumeShardedSession reconstructs a sharded session from its segmented
// board log after a crash or restart: every shard segment is replayed as
// ResumeSession would, interrupted Resets are rolled forward, shards sealed
// before a crash mid-finalize keep their transcripts for the re-merge, and a
// missing manifest merged-seal record is healed from the segment seals. The
// resumed epoch finalizes to the same merged digest an uninterrupted run
// would have produced (byte-identical when opts.Rand carries the original
// seed).
func ResumeShardedSession(ctx context.Context, pub *Public, opts SessionOptions) (*ShardedSession, error) {
	return vdp.ResumeShardedSession(ctx, pub, opts)
}

// OpenSegmentedLog opens (or creates) the segmented board log for a sharded
// session under dir: one append-only segment per shard plus a manifest
// recording the fixed shard count and, per finalized epoch, the merged
// transcript digest. Pass shards = 0 to adopt an existing directory's count.
func OpenSegmentedLog(dir string, shards int, opts ...store.Option) (*SegmentedLog, error) {
	return store.OpenSegmentedLog(dir, shards, opts...)
}

// OpenSegmentedLogReadOnly opens an existing segmented board log for offline
// auditing; no file is created, written, or truncated.
func OpenSegmentedLogReadOnly(dir string) (*SegmentedLog, error) {
	return store.OpenSegmentedLogReadOnly(dir)
}

// ShardOf returns the shard that owns clientID in a deployment with the
// given shard count — the same pure hash every router, server, and auditor
// uses, so remote submitters can address the right shard endpoint.
func ShardOf(clientID, shards int) int { return vdp.ShardOf(clientID, shards) }

// MergedTranscriptDigest pins a sharded epoch: the per-shard transcript
// digests combined in shard (merge) order. With one shard it equals the
// plain transcript digest.
func MergedTranscriptDigest(pub *Public, shards []*Transcript) []byte {
	return vdp.MergedTranscriptDigest(pub, shards)
}

// AuditMerged audits a merged (sharded) epoch from its per-shard
// transcripts: each shard is fully re-verified, the shard map is checked
// (every client on its assigned shard, none on two), and the combined
// release must equal the recomputed merge.
func AuditMerged(ctx context.Context, pub *Public, shards []*Transcript, release *Release, workers int) error {
	return vdp.AuditMerged(ctx, pub, shards, release, workers)
}

// AuditSegmentedLog audits a merged epoch offline from a segmented board
// log alone: every shard segment is audited exactly like AuditLog audits a
// single log, and the recomputed merged digest must match the manifest's
// merged-seal record. epoch < 0 selects the latest merged-sealed epoch.
func AuditSegmentedLog(ctx context.Context, pub *Public, seg *SegmentedLog, epoch, workers int) error {
	return vdp.AuditSegmentedLog(ctx, pub, seg, epoch, workers)
}

// ResumeSession reconstructs a session from its board log after a crash or
// restart: the last open epoch's submissions are re-admitted in their
// original board order (re-verifying any whose verdicts were not yet
// persisted), so the resumed session finalizes to the same transcript an
// uninterrupted run would have produced — byte-identical when opts.Rand
// carries the original seed.
func ResumeSession(ctx context.Context, pub *Public, opts SessionOptions) (*Session, error) {
	return vdp.ResumeSession(ctx, pub, opts)
}

// AuditLog audits a sealed epoch offline from a board log alone: the sealed
// transcript is fully re-verified (exactly Audit) and cross-checked against
// the log's own per-arrival submission records. epoch < 0 selects the
// latest sealed epoch; workers follows the AuditParallel convention.
func AuditLog(ctx context.Context, pub *Public, log BoardLog, epoch, workers int) error {
	return vdp.AuditLog(ctx, pub, log, epoch, workers)
}

// SealedEpochs lists the epochs a board log has sealed, in order.
func SealedEpochs(log BoardLog) ([]int, error) { return vdp.SealedEpochs(log) }

// Run executes a complete protocol instance locally (clients, K provers,
// public verifier, Morra coin sampling) and returns the verified release
// with its audit transcript. It is a compatibility wrapper over a one-epoch
// Session with batched verification.
func Run(pub *Public, choices []int, opts *RunOptions) (*RunResult, error) {
	return vdp.Run(pub, choices, opts)
}

// RunContext is Run with cancellation: the staged pipeline checks ctx
// between (and inside) stages and returns ctx.Err() promptly once it is
// cancelled.
func RunContext(ctx context.Context, pub *Public, choices []int, opts *RunOptions) (*RunResult, error) {
	return vdp.RunContext(ctx, pub, choices, opts)
}

// Audit replays every public check from a transcript; nil means an
// independent auditor accepts the release. Client-board and coin proofs are
// verified with random-linear-combination batches spread over every core.
func Audit(pub *Public, t *Transcript) error { return vdp.Audit(pub, t) }

// AuditContext is Audit with cancellation.
func AuditContext(ctx context.Context, pub *Public, t *Transcript) error {
	return vdp.AuditContext(ctx, pub, t)
}

// AuditParallel is Audit with an explicit worker-pool width (0 = all cores,
// 1 = sequential). The verdict is identical at every width.
func AuditParallel(pub *Public, t *Transcript, workers int) error {
	return vdp.AuditParallel(pub, t, workers)
}

// NewEngine builds a reusable execution engine over pub with the given
// worker-pool width (0 = all cores). Run/Count/Histogram construct one per
// call; callers running many protocol instances can hold one instead.
func NewEngine(pub *Public, workers int) *Engine { return vdp.NewEngine(pub, workers) }

// Options configures the high-level Count and Histogram helpers.
type Options struct {
	// Epsilon and Delta are the DP parameters (per prover). Required
	// unless Coins is set.
	Epsilon float64
	Delta   float64
	// Servers is the number of provers K; 0 or 1 selects the trusted-
	// curator model.
	Servers int
	// Group selects the commitment group; nil = P-256.
	Group Group
	// Coins overrides the calibrated per-prover noise coin count.
	Coins int
	// Rand overrides the randomness source (nil = crypto/rand). When set,
	// one root seed is read and expanded into per-task substreams, so the
	// same seed yields an identical transcript at every Parallelism.
	Rand io.Reader
	// Parallelism is the execution engine's worker-pool width; 0 selects
	// runtime.GOMAXPROCS(0) (every core), 1 forces sequential execution.
	Parallelism int
}

func (o Options) config(bins int) Config {
	k := o.Servers
	if k < 1 {
		k = 1
	}
	return Config{
		Group:   o.Group,
		Provers: k,
		Bins:    bins,
		Epsilon: o.Epsilon,
		Delta:   o.Delta,
		Coins:   o.Coins,
	}
}

// CountResult is the outcome of a high-level helper run.
type CountResult struct {
	// Public holds the deployment's public parameters; an auditor can
	// reconstruct an equivalent value from the configuration alone.
	Public *Public
	// Release is the verified noisy release with debiased estimates.
	Release *Release
	// Transcript is the public record behind the release; pass it to Audit.
	Transcript *Transcript
	// Rejected maps client index to the (publicly attributable) reason the
	// input was excluded.
	Rejected map[int]error
}

// Count releases a verifiable DP count of the true bits: the number of
// clients whose bit is set, plus K copies of Binomial(nb, ½) noise, with a
// public transcript proving the noise was honest. Release.Estimate[0] is
// the debiased estimate.
func Count(bits []bool, opts Options) (*CountResult, error) {
	if len(bits) == 0 {
		return nil, fmt.Errorf("%w: no client inputs", ErrBadConfig)
	}
	pub, err := Setup(opts.config(1))
	if err != nil {
		return nil, err
	}
	choices := make([]int, len(bits))
	for i, b := range bits {
		if b {
			choices[i] = 1
		}
	}
	res, err := vdp.Run(pub, choices, &vdp.RunOptions{Rand: opts.Rand, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	return &CountResult{Public: pub, Release: res.Release, Transcript: res.Transcript, Rejected: res.RejectedClients}, nil
}

// Histogram releases a verifiable DP M-bin histogram of the client
// choices (each in [0, bins)).
func Histogram(choices []int, bins int, opts Options) (*CountResult, error) {
	if len(choices) == 0 {
		return nil, fmt.Errorf("%w: no client inputs", ErrBadConfig)
	}
	if bins < 2 {
		return nil, fmt.Errorf("%w: histogram needs at least 2 bins", ErrBadConfig)
	}
	pub, err := Setup(opts.config(bins))
	if err != nil {
		return nil, err
	}
	res, err := vdp.Run(pub, choices, &vdp.RunOptions{Rand: opts.Rand, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	return &CountResult{Public: pub, Release: res.Release, Transcript: res.Transcript, Rejected: res.RejectedClients}, nil
}
